#include "util/json_in.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace ls::util {

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw std::logic_error("JsonValue: not a bool");
  return bool_;
}

double JsonValue::as_double() const {
  if (kind_ != Kind::kNumber) {
    throw std::logic_error("JsonValue: not a number");
  }
  return num_;
}

std::uint64_t JsonValue::as_u64() const {
  if (kind_ != Kind::kNumber || !is_integer_ || num_ < 0.0 ||
      num_ > 18446744073709549568.0) {  // largest double below 2^64
    throw std::logic_error("JsonValue: not a uint64");
  }
  return static_cast<std::uint64_t>(num_);
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) {
    throw std::logic_error("JsonValue: not a string");
  }
  return str_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) throw std::logic_error("JsonValue: not an array");
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) {
    throw std::logic_error("JsonValue: not an object");
  }
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double d, bool is_integer) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_ = d;
  v.is_integer_ = is_integer;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

 private:
  bool fail(const char* what) {
    if (error_ != nullptr) {
      std::ostringstream os;
      os << "json parse error at offset " << pos_ << ": " << what;
      *error_ = os.str();
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue* out) {
    if (++depth_ > kMaxDepth) return fail("nesting too deep");
    const bool ok = parse_value_inner(out);
    --depth_;
    return ok;
  }

  bool parse_value_inner(JsonValue* out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case 'n':
        if (!literal("null")) return fail("bad literal");
        *out = JsonValue::make_null();
        return true;
      case 't':
        if (!literal("true")) return fail("bad literal");
        *out = JsonValue::make_bool(true);
        return true;
      case 'f':
        if (!literal("false")) return fail("bad literal");
        *out = JsonValue::make_bool(false);
        return true;
      case '"': {
        std::string s;
        if (!parse_string(&s)) return false;
        *out = JsonValue::make_string(std::move(s));
        return true;
      }
      case '[':
        return parse_array(out);
      case '{':
        return parse_object(out);
      default:
        return parse_number(out);
    }
  }

  bool parse_string(std::string* out) {
    if (text_[pos_] != '"') return fail("expected string");
    ++pos_;
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return fail("bad \\u escape");
            }
            const char h = text_[pos_++];
            code = code * 16 +
                   (h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by JsonWriter; lone surrogates encode as-is).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return fail("bad escape");
      }
    }
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ == start) return fail("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(d)) {
      return fail("bad number");
    }
    *out = JsonValue::make_number(d, integral);
    return true;
  }

  bool parse_array(JsonValue* out) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      *out = JsonValue::make_array(std::move(items));
      return true;
    }
    while (true) {
      JsonValue item;
      skip_ws();
      if (!parse_value(&item)) return false;
      items.push_back(std::move(item));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      const char c = text_[pos_++];
      if (c == ']') break;
      if (c != ',') return fail("expected ',' or ']'");
    }
    *out = JsonValue::make_array(std::move(items));
    return true;
  }

  bool parse_object(JsonValue* out) {
    ++pos_;  // '{'
    std::map<std::string, JsonValue> members;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      *out = JsonValue::make_object(std::move(members));
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      if (!parse_string(&key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_++] != ':') {
        return fail("expected ':'");
      }
      skip_ws();
      JsonValue value;
      if (!parse_value(&value)) return false;
      members.insert_or_assign(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      const char c = text_[pos_++];
      if (c == '}') break;
      if (c != ',') return fail("expected ',' or '}'");
    }
    *out = JsonValue::make_object(std::move(members));
    return true;
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool parse_json(std::string_view text, JsonValue* out, std::string* error) {
  return Parser(text, error).parse(out);
}

bool parse_json_file(const std::string& path, JsonValue* out,
                     std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_json(buf.str(), out, error);
}

}  // namespace ls::util
