#include "util/log.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdlib>
#include <cstring>

namespace ls::util {

namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("LS_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0 || std::strcmp(env, "0") == 0) {
    return LogLevel::kDebug;
  }
  if (std::strcmp(env, "info") == 0 || std::strcmp(env, "1") == 0) {
    return LogLevel::kInfo;
  }
  if (std::strcmp(env, "warn") == 0 || std::strcmp(env, "warning") == 0 ||
      std::strcmp(env, "2") == 0) {
    return LogLevel::kWarn;
  }
  if (std::strcmp(env, "error") == 0 || std::strcmp(env, "3") == 0) {
    return LogLevel::kError;
  }
  return LogLevel::kInfo;
}

std::atomic<int>& level_ref() {
  static std::atomic<int> level{static_cast<int>(level_from_env())};
  return level;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

double seconds_since_start() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point t0 = clock::now();
  return std::chrono::duration<double>(clock::now() - t0).count();
}

std::size_t thread_ordinal() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t id = next.fetch_add(1);
  return id;
}

}  // namespace

void set_log_level(LogLevel level) {
  level_ref().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(level_ref().load(std::memory_order_relaxed));
}

void log(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < level_ref().load(std::memory_order_relaxed)) {
    return;
  }
  char buf[2048];
  int n = std::snprintf(buf, sizeof(buf), "[%11.6f %s t%02zu] ",
                        seconds_since_start(), level_tag(level),
                        thread_ordinal());
  if (n < 0) return;
  auto used = static_cast<std::size_t>(n);
  va_list args;
  va_start(args, fmt);
  const int body = std::vsnprintf(buf + used, sizeof(buf) - used, fmt, args);
  va_end(args);
  if (body > 0) {
    used = std::min(used + static_cast<std::size_t>(body), sizeof(buf) - 2);
  }
  buf[used] = '\n';
  std::fwrite(buf, 1, used + 1, stderr);
}

}  // namespace ls::util
