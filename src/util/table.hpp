#pragma once
// ASCII table printer used by every bench binary to report results in the
// same row layout as the paper's tables ("paper value vs measured").

#include <string>
#include <vector>

namespace ls::util {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the header row. Must be called before add_row.
  void set_header(std::vector<std::string> header);

  /// Adds a data row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Renders the table with aligned columns.
  std::string to_string() const;

  /// Convenience: render to stdout.
  void print() const;

  const std::string& title() const { return title_; }
  std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision (fixed notation).
std::string fmt_double(double v, int precision = 2);

/// Formats a ratio like "1.59x".
std::string fmt_speedup(double v, int precision = 2);

/// Formats a fraction like "81%".
std::string fmt_percent(double frac, int precision = 0);

/// Formats a byte count with K/M suffix like the paper's TABLE I ("225K").
std::string fmt_bytes(double bytes);

}  // namespace ls::util
