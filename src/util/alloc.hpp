#pragma once
// Cache-line-aligned grow-only float buffers for kernel scratch space.
//
// The SIMD GEMM backend packs operands into panels it streams with vector
// loads; std::vector gives no alignment guarantee beyond alignof(float),
// and reallocation on growth copies contents nobody needs (scratch is
// overwritten every call). AlignedBuffer grows without preserving contents
// and hands out 64-byte-aligned storage so packed panels never straddle a
// cache line and auto-vectorized loops can use aligned access patterns.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace ls::util {

/// Grow-only aligned float storage. reserve() invalidates contents; the
/// buffer never shrinks. Move-only.
class AlignedBuffer {
 public:
  static constexpr std::size_t kAlignment = 64;  ///< cache line

  AlignedBuffer() = default;
  ~AlignedBuffer() { std::free(data_); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(other.data_), capacity_(other.capacity_) {
    other.data_ = nullptr;
    other.capacity_ = 0;
  }
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      std::free(data_);
      data_ = other.data_;
      capacity_ = other.capacity_;
      other.data_ = nullptr;
      other.capacity_ = 0;
    }
    return *this;
  }

  /// Ensures capacity for `floats` elements. Contents are NOT preserved
  /// across growth (scratch semantics). Returns the number of reallocations
  /// performed (0 or 1) so arenas can track churn.
  std::size_t reserve(std::size_t floats) {
    if (floats <= capacity_) return 0;
    std::free(data_);
    // std::aligned_alloc requires the size to be a multiple of alignment.
    const std::size_t bytes =
        (floats * sizeof(float) + kAlignment - 1) / kAlignment * kAlignment;
    data_ = static_cast<float*>(std::aligned_alloc(kAlignment, bytes));
    if (data_ == nullptr) throw std::bad_alloc();
    capacity_ = bytes / sizeof(float);
    return 1;
  }

  float* data() { return data_; }
  const float* data() const { return data_; }
  std::size_t capacity() const { return capacity_; }

 private:
  float* data_ = nullptr;
  std::size_t capacity_ = 0;
};

}  // namespace ls::util
