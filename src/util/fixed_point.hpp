#pragma once
// 16-bit fixed-point arithmetic matching the DianNao-style accelerator cores
// in TABLE II of the paper ("16-bit fixed-point integer operation").
//
// We model the common Q1.15-style format with a configurable number of
// fractional bits. The accelerator cycle model does not need bit-accurate
// values, but the quantization helpers here let tests verify that the
// networks we train survive 16-bit deployment (the noise-tolerance premise
// the paper's techniques rest on).

#include <algorithm>
#include <cstdint>
#include <limits>

namespace ls::util {

/// Q(16-frac_bits).frac_bits signed fixed-point value.
template <int FracBits = 8>
class Fixed16 {
  static_assert(FracBits > 0 && FracBits < 16, "fractional bits out of range");

 public:
  static constexpr double kScale = static_cast<double>(1 << FracBits);
  static constexpr std::int16_t kMaxRaw =
      std::numeric_limits<std::int16_t>::max();
  static constexpr std::int16_t kMinRaw =
      std::numeric_limits<std::int16_t>::min();

  constexpr Fixed16() = default;

  /// Quantizes with round-to-nearest and saturation.
  static Fixed16 from_double(double v) {
    const double scaled = v * kScale;
    double rounded = scaled >= 0.0 ? scaled + 0.5 : scaled - 0.5;
    rounded = std::clamp(rounded, static_cast<double>(kMinRaw),
                         static_cast<double>(kMaxRaw));
    Fixed16 f;
    f.raw_ = static_cast<std::int16_t>(rounded);
    return f;
  }

  static constexpr Fixed16 from_raw(std::int16_t raw) {
    Fixed16 f;
    f.raw_ = raw;
    return f;
  }

  constexpr std::int16_t raw() const { return raw_; }
  constexpr double to_double() const {
    return static_cast<double>(raw_) / kScale;
  }

  /// Saturating addition.
  friend Fixed16 operator+(Fixed16 a, Fixed16 b) {
    const std::int32_t sum =
        static_cast<std::int32_t>(a.raw_) + static_cast<std::int32_t>(b.raw_);
    return from_raw(saturate(sum));
  }

  friend Fixed16 operator-(Fixed16 a, Fixed16 b) {
    const std::int32_t diff =
        static_cast<std::int32_t>(a.raw_) - static_cast<std::int32_t>(b.raw_);
    return from_raw(saturate(diff));
  }

  /// Saturating multiply with rounding of the dropped fractional bits.
  friend Fixed16 operator*(Fixed16 a, Fixed16 b) {
    std::int64_t prod =
        static_cast<std::int64_t>(a.raw_) * static_cast<std::int64_t>(b.raw_);
    prod += (std::int64_t{1} << (FracBits - 1));  // round half up
    prod >>= FracBits;
    return from_raw(saturate(static_cast<std::int32_t>(
        std::clamp<std::int64_t>(prod, kMinRaw, kMaxRaw))));
  }

  friend constexpr bool operator==(Fixed16 a, Fixed16 b) {
    return a.raw_ == b.raw_;
  }
  friend constexpr auto operator<=>(Fixed16 a, Fixed16 b) {
    return a.raw_ <=> b.raw_;
  }

 private:
  static constexpr std::int16_t saturate(std::int32_t v) {
    return static_cast<std::int16_t>(
        std::clamp<std::int32_t>(v, kMinRaw, kMaxRaw));
  }

  std::int16_t raw_ = 0;
};

/// Quantize a double through 16-bit fixed point and back; exposes the
/// quantization error the accelerator introduces.
template <int FracBits = 8>
double quantize_f16(double v) {
  return Fixed16<FracBits>::from_double(v).to_double();
}

}  // namespace ls::util
