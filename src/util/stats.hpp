#pragma once
// Small statistics helpers used by the simulators and benches.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ls::util {

/// Online mean/variance/min/max accumulator (Welford).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile over a copy of the data (nearest-rank).
double percentile(std::span<const double> data, double pct);

double mean(std::span<const double> data);
double stddev(std::span<const double> data);

/// Fixed-width histogram for latency distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;

  /// Quantile estimate (q clamped to [0, 1]) by linear interpolation
  /// inside the bin holding the target rank. Underflow mass resolves to
  /// the range's low edge and overflow mass to its high edge — callers
  /// with exact extrema should clamp to them. Requires total() > 0.
  double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace ls::util
