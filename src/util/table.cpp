#include "util/table.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace ls::util {

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  if (!header_.empty() && row.size() != header_.size()) {
    throw std::invalid_argument("table row width mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << row[i];
      if (i + 1 < row.size()) {
        out << std::string(widths[i] - row[i].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w + 2;
    out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_speedup(double v, int precision) {
  return fmt_double(v, precision) + "x";
}

std::string fmt_percent(double frac, int precision) {
  return fmt_double(frac * 100.0, precision) + "%";
}

std::string fmt_bytes(double bytes) {
  if (bytes >= 1024.0 * 1024.0) {
    return fmt_double(bytes / (1024.0 * 1024.0), 1) + "M";
  }
  if (bytes >= 1024.0) {
    return fmt_double(bytes / 1024.0, 0) + "K";
  }
  return fmt_double(bytes, 0) + "B";
}

}  // namespace ls::util
