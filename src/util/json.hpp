#pragma once
// Minimal streaming JSON writer shared by the observability exporters
// (ls::obs trace / metrics files) and the bench --json dumps. Produces
// compact, strictly valid JSON: strings are escaped, non-finite doubles
// are emitted as null (JSON has no NaN/Inf literal).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ls::util {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included): \" \\ and control characters become escape sequences.
std::string json_escape(std::string_view s);

/// Push-API writer. Misuse (a bare value inside an object without a key,
/// unbalanced end_*) throws std::logic_error rather than emitting garbage.
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Names the next value inside an object; returns *this so call sites
  /// can chain `w.key("k").value(v)`.
  JsonWriter& key(std::string_view k);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(bool b);
  void value(double d);  ///< non-finite doubles emit null
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
  void null();

  /// Emits `json` verbatim as one value. The caller guarantees it is a
  /// well-formed JSON value (used for pre-rendered trace-event args).
  void raw(std::string_view json);

  /// The document so far. Valid JSON once every begin_* is closed.
  const std::string& str() const { return out_; }
  bool done() const { return stack_.empty() && !out_.empty(); }

  /// Writes str() to `path`; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  void pre_value();

  struct Frame {
    bool array = false;
    bool first = true;
  };
  std::string out_;
  std::vector<Frame> stack_;
  bool pending_key_ = false;
};

}  // namespace ls::util
