#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ls::util {

void RunningStats::add(double x) {
  ++n_;
  if (n_ == 1) {
    mean_ = x;
    m2_ = 0.0;
    min_ = x;
    max_ = x;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::span<const double> data, double pct) {
  if (data.empty()) throw std::invalid_argument("percentile of empty span");
  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = pct / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean(std::span<const double> data) {
  RunningStats s;
  for (double x : data) s.add(x);
  return s.mean();
}

double stddev(std::span<const double> data) {
  RunningStats s;
  for (double x : data) s.add(x);
  return s.stddev();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0 || hi <= lo) throw std::invalid_argument("bad histogram spec");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::size_t>((x - lo_) / width);
  if (idx >= counts_.size()) idx = counts_.size() - 1;
  ++counts_[idx];
}

double Histogram::quantile(double q) const {
  if (total_ == 0) throw std::invalid_argument("quantile of empty histogram");
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (rank <= cum) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto count = static_cast<double>(counts_[i]);
    if (count > 0.0 && rank <= cum + count) {
      const double frac = (rank - cum) / count;
      return bin_low(i) + (bin_high(i) - bin_low(i)) * frac;
    }
    cum += count;
  }
  return hi_;  // rank falls in the overflow mass
}

double Histogram::bin_low(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bin_high(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i + 1);
}

}  // namespace ls::util
