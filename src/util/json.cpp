#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace ls::util {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void JsonWriter::pre_value() {
  if (stack_.empty()) {
    if (!out_.empty()) throw std::logic_error("json: second top-level value");
    return;
  }
  Frame& f = stack_.back();
  if (f.array) {
    if (!f.first) out_ += ',';
    f.first = false;
    return;
  }
  if (!pending_key_) throw std::logic_error("json: value in object needs key");
  pending_key_ = false;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (stack_.empty() || stack_.back().array) {
    throw std::logic_error("json: key outside object");
  }
  if (pending_key_) throw std::logic_error("json: key after key");
  Frame& f = stack_.back();
  if (!f.first) out_ += ',';
  f.first = false;
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

void JsonWriter::begin_object() {
  pre_value();
  out_ += '{';
  stack_.push_back(Frame{/*array=*/false, /*first=*/true});
}

void JsonWriter::end_object() {
  if (stack_.empty() || stack_.back().array || pending_key_) {
    throw std::logic_error("json: unbalanced end_object");
  }
  stack_.pop_back();
  out_ += '}';
}

void JsonWriter::begin_array() {
  pre_value();
  out_ += '[';
  stack_.push_back(Frame{/*array=*/true, /*first=*/true});
}

void JsonWriter::end_array() {
  if (stack_.empty() || !stack_.back().array) {
    throw std::logic_error("json: unbalanced end_array");
  }
  stack_.pop_back();
  out_ += ']';
}

void JsonWriter::value(std::string_view s) {
  pre_value();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
}

void JsonWriter::value(bool b) {
  pre_value();
  out_ += b ? "true" : "false";
}

void JsonWriter::value(double d) {
  if (!std::isfinite(d)) {
    null();
    return;
  }
  pre_value();
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), d);
  out_.append(buf, res.ptr);
}

void JsonWriter::value(std::int64_t v) {
  pre_value();
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out_.append(buf, res.ptr);
}

void JsonWriter::value(std::uint64_t v) {
  pre_value();
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out_.append(buf, res.ptr);
}

void JsonWriter::null() {
  pre_value();
  out_ += "null";
}

void JsonWriter::raw(std::string_view json) {
  pre_value();
  out_ += json;
}

bool JsonWriter::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(out_.data(), 1, out_.size(), f);
  const bool ok = n == out_.size() && std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

}  // namespace ls::util
