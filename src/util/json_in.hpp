#pragma once
// Minimal recursive-descent JSON parser — the read-side counterpart of
// json.hpp's JsonWriter. Exists for the tuner's best-schedule cache store
// (tune/schedule_cache), which must round-trip the documents JsonWriter
// emits; it is a full JSON reader, not a schema-aware one. Numbers are
// kept as double (exact for the integers the repo writes, which all fit
// in 2^53) plus an is_integer flag so callers can recover uint64 counts.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ls::util {

/// One parsed JSON value. Object keys keep a stable sorted order
/// (std::map) so re-serializing a parsed document is deterministic.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  bool as_bool() const;
  double as_double() const;
  /// Numbers only; the parse must have been integral and in uint64 range.
  std::uint64_t as_u64() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const std::map<std::string, JsonValue>& as_object() const;

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double d, bool is_integer);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(std::map<std::string, JsonValue> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  bool is_integer_ = false;
  std::string str_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses one JSON document. Returns false (with a position-annotated
/// message in *error when non-null) on malformed input or trailing
/// garbage; *out is unspecified on failure.
bool parse_json(std::string_view text, JsonValue* out,
                std::string* error = nullptr);

/// File convenience wrapper: false on I/O failure or parse failure.
bool parse_json_file(const std::string& path, JsonValue* out,
                     std::string* error = nullptr);

}  // namespace ls::util
