#pragma once
// Deterministic pseudo-random number generation for reproducible experiments.
//
// All stochastic components in the library (weight init, synthetic datasets,
// traffic jitter) draw from ls::util::Rng so that a single seed reproduces an
// entire experiment end to end.

#include <cstdint>
#include <limits>

namespace ls::util {

/// xoshiro256** generator (Blackman & Vigna). Fast, high quality, and
/// trivially seedable — we deliberately avoid std::mt19937 so that results
/// are identical across standard-library implementations.
class Rng {
 public:
  /// Seeds the four 64-bit lanes from a single seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  /// Re-initializes the state; equivalent to constructing a fresh Rng.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second variate).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

 private:
  std::uint64_t s_[4]{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// splitmix64 step; used for seeding and for cheap stateless hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless 64-bit mix of a value (useful to derive per-stream seeds).
std::uint64_t hash_u64(std::uint64_t v);

}  // namespace ls::util
