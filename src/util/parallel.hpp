#pragma once
// Shared worker pool + deterministic parallel_for.
//
// Every hot path in the repo (im2col/GEMM conv kernels, FC layers, the
// per-layer NoC burst dispatch in ls::sim) funnels through this one pool so
// the process never oversubscribes the machine. Sizing:
//
//   * `LS_THREADS` environment variable when set (1 = fully serial),
//   * otherwise std::thread::hardware_concurrency().
//
// Determinism policy (see DESIGN.md "Performance architecture"): callers
// must write only to locations derived from the loop index, never
// accumulate into shared state from inside the loop body. Under that
// contract parallel_for only changes *which thread* computes an index,
// never the arithmetic performed for it, so results are bit-identical for
// any thread count including 1.
//
// parallel_for called from inside a pool task runs inline on the calling
// thread (no nested fan-out, no deadlock), which lets composite kernels
// (e.g. a batch loop around a row-parallel GEMM) use it unconditionally.
// Likewise, a parallel_for from a second *external* thread while another
// job is in flight runs inline serially — the pool executes one job at a
// time, and serial execution is always valid under the determinism
// contract. Checked builds (LS_CHECKS) additionally assert against pool
// misuse: resizing from inside a task or mid-job, and submitting to a
// stopped pool.

#include <cstddef>
#include <functional>

namespace ls::util {

/// Observability hooks around pool activity, installed process-wide by
/// ls::obs (null by default — the pool itself never depends on obs).
/// All callbacks must be thread-safe; `worker` is the pool worker index or
/// SIZE_MAX for the calling thread, `items` the loop indices the thread
/// executed. Install before parallel work starts, not during a running
/// parallel_for.
struct PoolHooks {
  void (*task_begin)(std::size_t worker) = nullptr;
  void (*task_end)(std::size_t worker, std::size_t items) = nullptr;
  /// Around a whole pooled parallel_for, on the calling thread. Serial and
  /// nested-inline fallbacks do not fire hooks.
  void (*job_begin)(std::size_t count) = nullptr;
  void (*job_end)(std::size_t count) = nullptr;
};

void set_pool_hooks(const PoolHooks& hooks);

class ThreadPool {
 public:
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide pool, created on first use from LS_THREADS.
  static ThreadPool& instance();

  /// Re-sizes the process pool (test hook for the 1-vs-N determinism
  /// suite). `n == 0` restores the LS_THREADS / hardware default. Must not
  /// be called concurrently with a running parallel_for.
  static void set_num_threads(std::size_t n);

  /// Worker threads plus the calling thread.
  std::size_t num_threads() const { return workers_count_ + 1; }

  /// Runs fn(i) exactly once for every i in [begin, end), blocking until
  /// all complete. The first exception thrown by any invocation is
  /// rethrown on the calling thread (remaining chunks are abandoned).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

 private:
  explicit ThreadPool(std::size_t threads);
  void worker_loop(std::size_t worker);
  void run_chunks(std::size_t worker);

  struct Impl;
  Impl* impl_;
  std::size_t workers_count_ = 0;
};

/// Convenience wrapper over ThreadPool::instance().
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

/// Threads the process pool will use (workers + caller).
std::size_t num_threads();

}  // namespace ls::util
