#include "util/rng.hpp"

#include <cmath>

namespace ls::util {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t hash_u64(std::uint64_t v) {
  std::uint64_t s = v;
  return splitmix64(s);
}

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& lane : s_) lane = splitmix64(s);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  // Lemire-style rejection-free bound is overkill here; modulo bias is
  // negligible for the n << 2^64 values we use, but we still mask the top
  // bits for uniformity on powers of two.
  return next_u64() % n;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

}  // namespace ls::util
