#include "util/parallel.hpp"

#include "check/check.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace ls::util {

namespace {

// True while the current thread is executing chunks of a parallel_for;
// nested calls then run inline instead of re-entering the pool.
thread_local bool tls_in_pool_task = false;

std::size_t threads_from_env() {
  if (const char* env = std::getenv("LS_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

PoolHooks g_pool_hooks{};
std::atomic<bool> g_pool_hooks_set{false};

}  // namespace

void set_pool_hooks(const PoolHooks& hooks) {
  g_pool_hooks = hooks;
  g_pool_hooks_set.store(true, std::memory_order_release);
}

struct ThreadPool::Impl {
  std::vector<std::thread> workers;

  // Held for the duration of one pooled parallel_for. The job slots below
  // are single-occupancy, so a second *external* thread arriving while a
  // job is in flight falls back to inline serial execution (see
  // parallel_for) instead of corrupting them.
  std::mutex job_mu;

  std::mutex mu;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  bool stop = false;
  std::uint64_t generation = 0;
  std::size_t active = 0;

  // Current job (valid while active > 0 or the caller is in run_chunks).
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t begin = 0;
  std::size_t count = 0;
  std::size_t chunk = 1;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(new Impl) {
  if (threads == 0) threads = 1;
  workers_count_ = threads - 1;
  impl_->workers.reserve(workers_count_);
  for (std::size_t i = 0; i < workers_count_; ++i) {
    impl_->workers.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->stop = true;
  }
  impl_->cv_work.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
}

namespace {
std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;
}  // namespace

ThreadPool& ThreadPool::instance() {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  if (!g_pool) g_pool.reset(new ThreadPool(threads_from_env()));
  return *g_pool;
}

void ThreadPool::set_num_threads(std::size_t n) {
  // Resizing destroys the pool; from inside a task that joins the thread
  // you are standing on, and mid-job it tears the Impl out from under the
  // workers. Both are caught in checked builds.
  LS_CHECK_MSG(!tls_in_pool_task,
               "ThreadPool::set_num_threads called from inside a pool task");
  std::lock_guard<std::mutex> lk(g_pool_mu);
  if constexpr (check::kEnabled) {
    if (g_pool) {
      std::unique_lock<std::mutex> job_lk(g_pool->impl_->job_mu,
                                          std::try_to_lock);
      LS_CHECK_MSG(job_lk.owns_lock(),
                   "ThreadPool::set_num_threads while a parallel_for is "
                   "running on the pool");
    }
  }
  g_pool.reset(new ThreadPool(n == 0 ? threads_from_env() : n));
}

void ThreadPool::run_chunks(std::size_t worker) {
  Impl& im = *impl_;
  const bool hooked = g_pool_hooks_set.load(std::memory_order_acquire);
  if (hooked && g_pool_hooks.task_begin != nullptr) {
    g_pool_hooks.task_begin(worker);
  }
  std::size_t items = 0;
  tls_in_pool_task = true;
  for (;;) {
    if (im.failed.load(std::memory_order_relaxed)) break;
    const std::size_t start = im.next.fetch_add(im.chunk);
    if (start >= im.count) break;
    const std::size_t stop = std::min(im.count, start + im.chunk);
    try {
      for (std::size_t i = start; i < stop; ++i) (*im.fn)(im.begin + i);
      items += stop - start;
    } catch (...) {
      std::lock_guard<std::mutex> lk(im.mu);
      if (!im.error) im.error = std::current_exception();
      im.failed.store(true, std::memory_order_relaxed);
      break;
    }
  }
  tls_in_pool_task = false;
  if (hooked && g_pool_hooks.task_end != nullptr) {
    g_pool_hooks.task_end(worker, items);
  }
}

void ThreadPool::worker_loop(std::size_t worker) {
  Impl& im = *impl_;
  std::uint64_t seen = 0;
  for (;;) {
    std::unique_lock<std::mutex> lk(im.mu);
    im.cv_work.wait(lk, [&] { return im.stop || im.generation != seen; });
    if (im.stop) return;
    seen = im.generation;
    lk.unlock();
    run_chunks(worker);
    lk.lock();
    if (--im.active == 0) im.cv_done.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (end <= begin) return;
  const std::size_t count = end - begin;
  if (count == 1 || workers_count_ == 0 || tls_in_pool_task) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  Impl& im = *impl_;
  // One external job at a time. A concurrent caller (two CmpSystem runs on
  // two threads, say) executes its loop inline instead — always valid under
  // the determinism contract (results are thread-count independent,
  // including fully serial) and safe by construction.
  std::unique_lock<std::mutex> job_lk(im.job_mu, std::try_to_lock);
  if (!job_lk.owns_lock()) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const bool hooked = g_pool_hooks_set.load(std::memory_order_acquire);
  if (hooked && g_pool_hooks.job_begin != nullptr) {
    g_pool_hooks.job_begin(count);
  }
  {
    std::lock_guard<std::mutex> lk(im.mu);
    LS_CHECK_MSG(!im.stop, "parallel_for on a stopped pool");
    im.fn = &fn;
    im.begin = begin;
    im.count = count;
    im.chunk = std::max<std::size_t>(1, count / (num_threads() * 8));
    im.next.store(0);
    im.failed.store(false);
    im.error = nullptr;
    im.active = workers_count_;
    ++im.generation;
  }
  im.cv_work.notify_all();
  run_chunks(SIZE_MAX);
  std::unique_lock<std::mutex> lk(im.mu);
  im.cv_done.wait(lk, [&] { return im.active == 0; });
  im.fn = nullptr;
  std::exception_ptr err = im.error;
  im.error = nullptr;
  lk.unlock();
  if (hooked && g_pool_hooks.job_end != nullptr) {
    g_pool_hooks.job_end(count);
  }
  if (err) std::rethrow_exception(err);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  ThreadPool::instance().parallel_for(begin, end, fn);
}

std::size_t num_threads() { return ThreadPool::instance().num_threads(); }

}  // namespace ls::util
