#pragma once
// Minimal leveled logger. Experiments print structured result tables via
// util/table.hpp; this logger is for progress and diagnostics only.
//
// The threshold starts from the LS_LOG_LEVEL environment variable
// (debug|info|warn|error or 0-3, default info). Every line is prefixed
// with a monotonic seconds-since-start timestamp and a small per-thread
// id, and is formatted into one buffer and written with a single fwrite
// so lines from concurrent threads never interleave.

#include <cstdio>
#include <string>

namespace ls::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Overrides the
/// LS_LOG_LEVEL environment default.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging. The format string is checked by the compiler.
void log(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

#define LS_LOG_DEBUG(...) ::ls::util::log(::ls::util::LogLevel::kDebug, __VA_ARGS__)
#define LS_LOG_INFO(...) ::ls::util::log(::ls::util::LogLevel::kInfo, __VA_ARGS__)
#define LS_LOG_WARN(...) ::ls::util::log(::ls::util::LogLevel::kWarn, __VA_ARGS__)
#define LS_LOG_ERROR(...) ::ls::util::log(::ls::util::LogLevel::kError, __VA_ARGS__)

}  // namespace ls::util
