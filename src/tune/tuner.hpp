#pragma once
// Schedule autotuner (DESIGN.md §4g "Schedule autotuning").
//
// Searches the cross-product of
//   * per-layer parallelization dimension (sched::PartitionDim),
//   * partition -> physical-core placement permutation,
//   * comm/compute overlap policy
// for the schedule with the lowest end-to-end cycle count. Candidates are
// scored with the analytic model (sched::estimate_cycles — thousands of
// evaluations per search), and only the top-k analytic winners are
// validated with the flit-level NoC simulation (CmpSystem::execute) before
// one is declared best. The search is greedy hill-climbing with random
// restarts over single-knob moves (one layer's dim, one placement swap,
// the overlap flag), driven by a seeded util::Rng: the same seed and
// budget always visit the same candidates and return the same winner.

#include <cstdint>
#include <vector>

#include "core/traffic.hpp"
#include "nn/layer_spec.hpp"
#include "sched/builders.hpp"
#include "sched/cost_model.hpp"
#include "sim/system.hpp"

namespace ls::tune {

/// One point in the search space. Defaults describe the historical
/// kernel-wise schedule (identity placement, no overlap).
struct Candidate {
  std::vector<sched::PartitionDim> layer_dims;  ///< per compute layer
  std::vector<std::size_t> placement;           ///< empty = identity
  bool overlap_comm = false;

  friend bool operator==(const Candidate&, const Candidate&) = default;
};

struct TunerConfig {
  /// Analytic-model evaluations across all restarts (the search's only
  /// cost knob; flit validation adds top_k + 1 simulations on top).
  std::uint64_t budget = 2000;
  std::size_t restarts = 4;
  /// Analytic winners to validate flit-level before declaring best.
  std::size_t top_k = 3;
  std::uint64_t seed = 0x4c535343;  ///< "LSSC"; any value is deterministic

  /// Tuning happens under a fixed overlap policy when false — the comm/
  /// compute overlap ablation knob stays at SystemConfig::overlap_comm and
  /// the search only moves dims and placement.
  bool search_overlap = true;
};

/// One scored mutation of a restart's hill climb. Accepted moves replace
/// the incumbent (strictly lower analytic cost).
struct TuneMove {
  std::uint64_t eval = 0;        ///< global eval index when scored (1-based)
  std::uint64_t est_cycles = 0;  ///< analytic score of the proposed move
  bool accepted = false;

  friend bool operator==(const TuneMove&, const TuneMove&) = default;
};

/// Trajectory of one restart: where it started, where it converged, and
/// every move it scored on the way.
struct TuneRestartTrace {
  std::size_t restart = 0;
  std::uint64_t start_est_cycles = 0;
  std::uint64_t final_est_cycles = 0;
  std::vector<TuneMove> moves;
};

/// One finalist's estimated-vs-validated pair — the cost-model scatter the
/// profiling layer plots (prof/report).
struct TuneValidationPoint {
  std::uint64_t est_cycles = 0;  ///< analytic score that shortlisted it
  std::uint64_t sim_cycles = 0;  ///< flit-level validation
  bool is_best = false;          ///< the declared winner

  friend bool operator==(const TuneValidationPoint&,
                         const TuneValidationPoint&) = default;
};

/// Search telemetry, filled when tune() is given a non-null out-param:
/// per-restart trajectories plus the validation scatter. Purely
/// observational — collecting it never changes the search.
struct TuneTelemetry {
  std::vector<TuneRestartTrace> restarts;
  std::vector<TuneValidationPoint> validations;
  std::uint64_t moves_accepted = 0;
  std::uint64_t moves_rejected = 0;
};

struct TuneOutcome {
  Candidate best;
  /// Analytic score of `best`.
  std::uint64_t best_est_cycles = 0;
  /// Flit-level validation of `best` (the declared metric).
  std::uint64_t best_sim_cycles = 0;
  /// The kernel-wise / identity-placement schedule under the system's own
  /// overlap flag — exactly what ls_experiment runs untuned.
  std::uint64_t baseline_est_cycles = 0;
  std::uint64_t baseline_sim_cycles = 0;
  std::uint64_t evals = 0;           ///< analytic evaluations spent
  std::size_t validated = 0;         ///< flit-level validations run

  double speedup_sim() const {
    return best_sim_cycles ? static_cast<double>(baseline_sim_cycles) /
                                 static_cast<double>(best_sim_cycles)
                           : 0.0;
  }
};

/// The scorer configuration implied by a system configuration — the same
/// accel/NoC/DRAM parameters CmpSystem would execute with.
sched::CostModelConfig cost_model_for(const sim::SystemConfig& system);

/// Lowers `candidate` against spec + traffic with the system's parameters
/// (always sparsity-free: non-kernel dims are undefined under liveness
/// discounts). An empty/default candidate reproduces the untuned schedule
/// except for the overlap flag, which comes from the candidate.
sched::Schedule lower_candidate(const nn::NetSpec& spec,
                                const core::InferenceTraffic& traffic,
                                const sim::SystemConfig& system,
                                const Candidate& candidate,
                                sched::Strategy strategy);

/// Runs the search (see file comment). `traffic` must be the transition
/// traffic for `spec` on the system's core count. When `telemetry` is
/// non-null the full search trace is written into it (cleared first).
TuneOutcome tune(const nn::NetSpec& spec,
                 const core::InferenceTraffic& traffic,
                 const sim::SystemConfig& system, const TunerConfig& cfg,
                 sched::Strategy strategy = sched::Strategy::kTraditional,
                 TuneTelemetry* telemetry = nullptr);

}  // namespace ls::tune
