#pragma once
// Best-schedule cache store for the autotuner (DESIGN.md §4g).
//
// A tuned schedule is worth persisting: the search costs seconds, the
// answer is a few dozen bytes, and it is valid for exactly one
// (net, cores, chips, strategy, NoC configuration) point — that tuple is
// the cache key. `ls_experiment tune` writes entries; `ls_experiment infer` /
// `stream` look their configuration up and transparently execute the tuned
// schedule on a hit, falling back bit-exactly to the untuned kernel-wise
// path on a miss.
//
// The store is one JSON document. Serialization is canonical — entries in
// sorted key order, fixed field order, integer cycle counts — so saving
// the same logical contents always produces byte-identical files (the
// tuner determinism test asserts this end-to-end: same seed + budget ->
// same bytes).

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "noc/simulator.hpp"
#include "tune/tuner.hpp"

namespace ls::tune {

/// The configuration point a tuned schedule is valid for. Every field
/// participates in the canonical key string — a tuned placement for one
/// NoC configuration must never be served for another.
struct CacheKey {
  std::string net;
  std::size_t cores = 0;  ///< total cores across all chips
  sched::Strategy strategy = sched::Strategy::kTraditional;
  noc::NocConfig noc{};
  double noc_clock_divider = 1.0;
  std::size_t chips = 1;  ///< package chip count (1 = flat machine)
};

/// Canonical key string, e.g.
/// "alexnet|cores=64|traditional|noc=fb64,mp20,vc3,vd4,rl3,pc2,xy|div=1|chips=1".
/// The trailing chips part is why the on-disk format is version 2: a
/// version-1 store (no chips dimension in its keys) must be rejected
/// loudly, not silently served for the wrong package shape.
std::string cache_key_string(const CacheKey& key);

/// Inverse of cache_key_string: parses a canonical key string back into
/// its configuration point. Returns false on any malformed or
/// non-canonical input (validated by round-tripping through
/// cache_key_string). `ls_experiment verify` uses this to rebuild the
/// system a cached schedule claims to target.
bool parse_cache_key(const std::string& key_string, CacheKey* out);

struct CacheEntry {
  Candidate candidate;
  std::uint64_t est_cycles = 0;       ///< analytic score of the winner
  std::uint64_t sim_cycles = 0;       ///< flit-level validation
  std::uint64_t baseline_sim_cycles = 0;
  std::uint64_t seed = 0;             ///< search provenance
  std::uint64_t budget = 0;

  friend bool operator==(const CacheEntry&, const CacheEntry&) = default;
};

class ScheduleCache {
 public:
  /// Nullptr when absent.
  const CacheEntry* find(const CacheKey& key) const;
  void put(const CacheKey& key, CacheEntry entry);
  std::size_t size() const { return entries_.size(); }

  /// Every entry, keyed by canonical key string in sorted order (the
  /// audit surface of `ls_experiment verify`).
  const std::map<std::string, CacheEntry>& entries() const {
    return entries_;
  }

  /// Canonical document (see file comment).
  std::string to_json() const;
  /// Replaces the contents. False (with *error set when non-null) on
  /// malformed JSON, unknown version, or invalid entry fields.
  bool from_json(std::string_view text, std::string* error = nullptr);

  /// Loads `path`; a missing file yields an empty cache and returns true
  /// (an unpopulated store is the normal cold-start state). Parse errors
  /// return false.
  bool load_file(const std::string& path, std::string* error = nullptr);
  bool save_file(const std::string& path) const;

 private:
  std::map<std::string, CacheEntry> entries_;  ///< canonical key -> entry
};

}  // namespace ls::tune
