#include "tune/schedule_cache.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>
#include <utility>
#include <vector>

#include "util/json.hpp"
#include "util/json_in.hpp"

namespace ls::tune {

std::string cache_key_string(const CacheKey& key) {
  char buf[176];
  // %g keeps the divider canonical (1, 1.5, 2 ...) without trailing zeros.
  std::snprintf(buf, sizeof(buf),
                "|cores=%zu|%s|noc=fb%zu,mp%zu,vc%zu,vd%zu,rl%zu,pc%zu,%s"
                "|div=%g|chips=%zu",
                key.cores, sched::to_string(key.strategy),
                key.noc.flit_bytes, key.noc.max_packet_flits, key.noc.vcs,
                key.noc.vc_depth, key.noc.router_latency,
                key.noc.phys_channels,
                key.noc.routing == noc::Routing::kXY ? "xy" : "yx",
                key.noc_clock_divider, key.chips);
  return key.net + buf;
}

bool parse_cache_key(const std::string& key_string, CacheKey* out) {
  // net|cores=N|strategy|noc=fbA,mpB,vcC,vdD,rlE,pcF,ROUTE|div=G|chips=H
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t pos = key_string.find('|'); pos != std::string::npos;
       pos = key_string.find('|', start)) {
    parts.push_back(key_string.substr(start, pos - start));
    start = pos + 1;
  }
  parts.push_back(key_string.substr(start));
  if (parts.size() != 6 || parts[0].empty()) return false;

  CacheKey key;
  key.net = parts[0];
  if (std::sscanf(parts[1].c_str(), "cores=%zu", &key.cores) != 1) {
    return false;
  }
  bool strategy_ok = false;
  for (const sched::Strategy s :
       {sched::Strategy::kTraditional, sched::Strategy::kStructureLevel,
        sched::Strategy::kSparsified, sched::Strategy::kHybrid}) {
    if (parts[2] == sched::to_string(s)) {
      key.strategy = s;
      strategy_ok = true;
    }
  }
  if (!strategy_ok) return false;
  char route[3] = {};
  if (std::sscanf(parts[3].c_str(),
                  "noc=fb%zu,mp%zu,vc%zu,vd%zu,rl%zu,pc%zu,%2s",
                  &key.noc.flit_bytes, &key.noc.max_packet_flits,
                  &key.noc.vcs, &key.noc.vc_depth, &key.noc.router_latency,
                  &key.noc.phys_channels, route) != 7) {
    return false;
  }
  if (route == std::string_view("xy")) {
    key.noc.routing = noc::Routing::kXY;
  } else if (route == std::string_view("yx")) {
    key.noc.routing = noc::Routing::kYX;
  } else {
    return false;
  }
  if (std::sscanf(parts[4].c_str(), "div=%lf", &key.noc_clock_divider) != 1) {
    return false;
  }
  if (std::sscanf(parts[5].c_str(), "chips=%zu", &key.chips) != 1) {
    return false;
  }
  // Canonical-form check: anything that does not round-trip byte-identically
  // (stray whitespace, non-%g divider spelling, net names containing '|')
  // is rejected rather than silently normalized.
  if (cache_key_string(key) != key_string) return false;
  *out = std::move(key);
  return true;
}

const CacheEntry* ScheduleCache::find(const CacheKey& key) const {
  const auto it = entries_.find(cache_key_string(key));
  return it == entries_.end() ? nullptr : &it->second;
}

void ScheduleCache::put(const CacheKey& key, CacheEntry entry) {
  entries_.insert_or_assign(cache_key_string(key), std::move(entry));
}

std::string ScheduleCache::to_json() const {
  util::JsonWriter w;
  w.begin_object();
  // Version 2: keys carry the package chip count (|chips=H). Version 1
  // stores predate the multi-chip hierarchy and are rejected on load.
  w.key("version").value(std::uint64_t{2});
  w.key("entries");
  w.begin_object();
  for (const auto& [key, e] : entries_) {  // std::map: sorted, canonical
    w.key(key);
    w.begin_object();
    w.key("layer_dims");
    w.begin_array();
    for (const sched::PartitionDim d : e.candidate.layer_dims) {
      w.value(sched::to_string(d));
    }
    w.end_array();
    w.key("placement");
    w.begin_array();
    for (const std::size_t c : e.candidate.placement) {
      w.value(static_cast<std::uint64_t>(c));
    }
    w.end_array();
    w.key("overlap").value(e.candidate.overlap_comm);
    w.key("est_cycles").value(e.est_cycles);
    w.key("sim_cycles").value(e.sim_cycles);
    w.key("baseline_sim_cycles").value(e.baseline_sim_cycles);
    w.key("seed").value(e.seed);
    w.key("budget").value(e.budget);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

bool ScheduleCache::from_json(std::string_view text, std::string* error) {
  const auto fail = [error](const std::string& what) {
    if (error != nullptr) *error = "schedule cache: " + what;
    return false;
  };
  util::JsonValue doc;
  std::string parse_error;
  if (!util::parse_json(text, &doc, &parse_error)) return fail(parse_error);
  const util::JsonValue* version = doc.find("version");
  if (version == nullptr) return fail("missing version");
  if (version->as_u64() != 2) {
    return fail("format version " + std::to_string(version->as_u64()) +
                " but this build expects 2 (keys gained a chips dimension) "
                "— delete the stale store and retune");
  }
  const util::JsonValue* entries = doc.find("entries");
  if (entries == nullptr ||
      entries->kind() != util::JsonValue::Kind::kObject) {
    return fail("missing entries object");
  }
  std::map<std::string, CacheEntry> parsed;
  for (const auto& [key, v] : entries->as_object()) {
    CacheEntry e;
    const util::JsonValue* dims = v.find("layer_dims");
    const util::JsonValue* placement = v.find("placement");
    const util::JsonValue* overlap = v.find("overlap");
    if (dims == nullptr || placement == nullptr || overlap == nullptr) {
      return fail("entry '" + key + "' lacks a required field");
    }
    for (const util::JsonValue& d : dims->as_array()) {
      sched::PartitionDim dim;
      if (!sched::parse_partition_dim(d.as_string(), &dim)) {
        return fail("entry '" + key + "': unknown dim '" + d.as_string() +
                    "'");
      }
      e.candidate.layer_dims.push_back(dim);
    }
    for (const util::JsonValue& c : placement->as_array()) {
      e.candidate.placement.push_back(
          static_cast<std::size_t>(c.as_u64()));
    }
    e.candidate.overlap_comm = overlap->as_bool();
    const auto u64_field = [&v](const char* name, std::uint64_t* out) {
      const util::JsonValue* f = v.find(name);
      if (f != nullptr) *out = f->as_u64();
    };
    u64_field("est_cycles", &e.est_cycles);
    u64_field("sim_cycles", &e.sim_cycles);
    u64_field("baseline_sim_cycles", &e.baseline_sim_cycles);
    u64_field("seed", &e.seed);
    u64_field("budget", &e.budget);
    parsed.insert_or_assign(key, std::move(e));
  }
  entries_ = std::move(parsed);
  return true;
}

bool ScheduleCache::load_file(const std::string& path, std::string* error) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) {
    entries_.clear();  // cold start: an absent store is an empty store
    return true;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "schedule cache: cannot open '" + path + "'";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_json(buf.str(), error);
}

bool ScheduleCache::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << to_json();
  return static_cast<bool>(out);
}

}  // namespace ls::tune
