#include "tune/tuner.hpp"

#include <algorithm>
#include <utility>

#include "check/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/verify.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace ls::tune {

namespace {

constexpr sched::PartitionDim kAllDims[] = {
    sched::PartitionDim::kKernel, sched::PartitionDim::kBatch,
    sched::PartitionDim::kHeight, sched::PartitionDim::kWidth,
    sched::PartitionDim::kChannel};

std::vector<std::size_t> identity(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  return p;
}

/// Search state shared by the restarts: the scorer, the per-layer legal
/// moves, and the budget ledger.
class Search {
 public:
  Search(const nn::NetSpec& spec, const core::InferenceTraffic& traffic,
         const sim::SystemConfig& system, const TunerConfig& cfg,
         sched::Strategy strategy)
      : spec_(spec),
        traffic_(traffic),
        system_(system),
        cfg_(cfg),
        strategy_(strategy),
        cost_(cost_model_for(system)),
        rng_(cfg.seed) {
    std::size_t layers = 0;
    for (const nn::LayerAnalysis& a : nn::analyze(spec)) {
      layers += a.is_compute() ? 1 : 0;
    }
    legal_dims_.resize(layers);
    // Multi-chip: a channel split's reduce-scatter rides on the next layer
    // transition, which does not exist across a stage boundary — exclude
    // kChannel on stage-ending layers so every candidate stays lowerable.
    std::vector<std::size_t> stages;
    if (system.chips > 1) {
      stages = sched::partition_stages(spec, system.chips);
    }
    for (std::size_t li = 0; li < layers; ++li) {
      const bool stage_end =
          !stages.empty() &&
          (li + 1 == layers || stages[li + 1] != stages[li]);
      for (const sched::PartitionDim d : kAllDims) {
        if (stage_end && d == sched::PartitionDim::kChannel) continue;
        if (sched::dim_compatible(spec, li, d)) legal_dims_[li].push_back(d);
      }
    }
  }

  std::size_t layers() const { return legal_dims_.size(); }
  std::uint64_t evals() const { return evals_; }
  util::Rng& rng() { return rng_; }

  std::uint64_t score(const Candidate& c) {
    ++evals_;
    return sched::estimate_cycles(
               lower_candidate(spec_, traffic_, system_, c, strategy_), cost_)
        .total_cycles;
  }

  Candidate baseline() const {
    Candidate c;
    c.layer_dims.assign(layers(), sched::PartitionDim::kKernel);
    // Placement permutes one chip's mesh (== the whole machine when
    // chips == 1); stage-pipelined lowering requires it to stay identity,
    // so multi-chip searches freeze this knob (dims + overlap only).
    c.placement = identity(system_.cores / system_.chips);
    c.overlap_comm = system_.overlap_comm;
    return c;
  }

  Candidate random_start() {
    Candidate c = baseline();
    for (std::size_t li = 0; li < layers(); ++li) {
      const auto& legal = legal_dims_[li];
      c.layer_dims[li] = legal[rng_.uniform_index(legal.size())];
    }
    if (system_.chips == 1) {
      // Fisher-Yates with the search rng — deterministic under the seed.
      for (std::size_t i = c.placement.size(); i > 1; --i) {
        std::swap(c.placement[i - 1], c.placement[rng_.uniform_index(i)]);
      }
    }
    if (cfg_.search_overlap) c.overlap_comm = rng_.bernoulli(0.5);
    return c;
  }

  /// One single-knob mutation of `c`.
  Candidate mutate(const Candidate& c) {
    Candidate m = c;
    // Move mix: dims are the high-value knob, placement swaps explore the
    // mesh mapping (single-chip only — see baseline()), the overlap flip
    // is one bit (when searchable).
    const std::size_t placement_moves = system_.chips == 1 ? 2 : 0;
    const std::uint64_t move = rng_.uniform_index(
        3 + placement_moves + (cfg_.search_overlap ? 1 : 0));
    if (move < 3) {
      const std::size_t li = rng_.uniform_index(layers());
      const auto& legal = legal_dims_[li];
      m.layer_dims[li] = legal[rng_.uniform_index(legal.size())];
    } else if (move < 3 + placement_moves) {
      const std::size_t a = rng_.uniform_index(m.placement.size());
      const std::size_t b = rng_.uniform_index(m.placement.size());
      std::swap(m.placement[a], m.placement[b]);
    } else {
      m.overlap_comm = !m.overlap_comm;
    }
    return m;
  }

 private:
  const nn::NetSpec& spec_;
  const core::InferenceTraffic& traffic_;
  const sim::SystemConfig& system_;
  const TunerConfig& cfg_;
  sched::Strategy strategy_;
  sched::CostModelConfig cost_;
  util::Rng rng_;
  std::vector<std::vector<sched::PartitionDim>> legal_dims_;
  std::uint64_t evals_ = 0;
};

}  // namespace

sched::CostModelConfig cost_model_for(const sim::SystemConfig& system) {
  sched::CostModelConfig cost;
  cost.accel = system.accel;
  cost.chip_dram_bytes_per_cycle = system.chip_dram_bytes_per_cycle;
  cost.noc = system.noc;
  cost.noc_clock_divider = system.noc_clock_divider;
  cost.inter_chip = system.inter_chip;
  return cost;
}

sched::Schedule lower_candidate(const nn::NetSpec& spec,
                                const core::InferenceTraffic& traffic,
                                const sim::SystemConfig& system,
                                const Candidate& candidate,
                                sched::Strategy strategy) {
  LS_CHECK_MSG(system.chips > 0 && system.cores % system.chips == 0,
               "lower_candidate: %zu chips cannot tile %zu cores",
               system.chips, system.cores);
  sched::BuildOptions opts;
  opts.cores = system.cores / system.chips;  // one chip's mesh
  opts.bytes_per_value = system.bytes_per_value;
  opts.overlap_comm = candidate.overlap_comm;
  opts.sparse_cycle_model = false;
  opts.layer_dims = candidate.layer_dims;
  opts.placement = candidate.placement;
  if (system.chips > 1) {
    return sched::lower_pipelined(spec, traffic, opts, system.chips, nullptr,
                                  strategy);
  }
  return sched::lower(spec, traffic, opts, nullptr, strategy);
}

TuneOutcome tune(const nn::NetSpec& spec,
                 const core::InferenceTraffic& traffic,
                 const sim::SystemConfig& system, const TunerConfig& cfg,
                 sched::Strategy strategy, TuneTelemetry* telemetry) {
  LS_CHECK_MSG(cfg.budget > 0 && cfg.restarts > 0 && cfg.top_k > 0,
               "tune('%s'): budget, restarts and top_k must be positive",
               spec.name.c_str());
  static obs::Counter& evals_ctr =
      obs::Registry::instance().counter("tune.evals");
  static obs::Counter& validated_ctr =
      obs::Registry::instance().counter("tune.validated");
  static obs::Counter& restarts_ctr =
      obs::Registry::instance().counter("tune.restarts");
  static obs::Counter& accepted_ctr =
      obs::Registry::instance().counter("tune.moves_accepted");
  static obs::Counter& rejected_ctr =
      obs::Registry::instance().counter("tune.moves_rejected");
  if (telemetry != nullptr) *telemetry = TuneTelemetry{};

  Search search(spec, traffic, system, cfg, strategy);
  TuneOutcome out;

  // Baseline: what ls_experiment executes untuned. Scored outside the
  // budget (it is the yardstick, not a candidate).
  const Candidate base = search.baseline();

  // Greedy hill-climbing with restarts; collect each restart's local
  // optimum as a validation candidate.
  std::vector<std::pair<std::uint64_t, Candidate>> optima;
  {
    obs::Span span("tune.search", "tune");
    const std::uint64_t per_restart =
        std::max<std::uint64_t>(1, cfg.budget / cfg.restarts);
    for (std::size_t r = 0;
         r < cfg.restarts && search.evals() < cfg.budget; ++r) {
      obs::Span restart_span;
      if (obs::trace_enabled()) {
        restart_span.begin("tune.restart#" + std::to_string(r), "tune");
      }
      restarts_ctr.inc();
      Candidate cur = r == 0 ? base : search.random_start();
      std::uint64_t cur_cost = search.score(cur);
      TuneRestartTrace trace;
      trace.restart = r;
      trace.start_est_cycles = cur_cost;
      const std::uint64_t stop =
          std::min<std::uint64_t>(cfg.budget, (r + 1) * per_restart);
      while (search.evals() < stop) {
        const Candidate next = search.mutate(cur);
        const std::uint64_t next_cost = search.score(next);
        const bool accepted = next_cost < cur_cost;
        (accepted ? accepted_ctr : rejected_ctr).inc();
        if (telemetry != nullptr) {
          trace.moves.push_back({search.evals(), next_cost, accepted});
          (accepted ? telemetry->moves_accepted : telemetry->moves_rejected)++;
        }
        if (accepted) {
          cur = next;
          cur_cost = next_cost;
        }
      }
      if (telemetry != nullptr) {
        trace.final_est_cycles = cur_cost;
        telemetry->restarts.push_back(std::move(trace));
      }
      optima.emplace_back(cur_cost, std::move(cur));
    }
  }
  out.evals = search.evals();
  evals_ctr.inc(out.evals);

  // Deduplicate and keep the top-k analytic winners for flit validation.
  std::stable_sort(optima.begin(), optima.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  std::vector<std::pair<std::uint64_t, Candidate>> finalists;
  for (auto& [est, cand] : optima) {
    if (finalists.size() >= cfg.top_k) break;
    bool dup = false;
    for (const auto& f : finalists) dup = dup || f.second == cand;
    if (!dup) finalists.emplace_back(est, std::move(cand));
  }
  LS_CHECK_MSG(!finalists.empty(), "tune('%s'): search produced no optima",
               spec.name.c_str());

  // Flit-level validation: the analytic model picks the shortlist, the
  // real simulator picks the winner (and prices the baseline for the
  // reported speedup).
  {
    obs::Span span("tune.validate", "tune");
    const sim::CmpSystem sys(system);
    out.baseline_sim_cycles =
        sys.execute(lower_candidate(spec, traffic, system, base, strategy))
            .total_cycles;
    out.baseline_est_cycles =
        sched::estimate_cycles(
            lower_candidate(spec, traffic, system, base, strategy),
            cost_model_for(system))
            .total_cycles;
    bool have_best = false;
    std::size_t best_idx = 0;
    sched::VerifyOptions vopts;
    vopts.accel = system.accel;
    vopts.accel.dram_bytes_per_cycle =
        system.chip_dram_bytes_per_cycle /
        static_cast<double>(system.cores / system.chips);
    vopts.noc = system.noc;
    for (const auto& [est, cand] : finalists) {
      obs::Span vspan;
      if (obs::trace_enabled()) {
        vspan.begin("tune.validate#" + std::to_string(out.validated), "tune");
      }
      // Static verification gates the expensive flit-level validation:
      // a finalist the verifier rejects never reaches the simulator. A
      // violation here means a builder bug — abort in checked builds,
      // skip the candidate in release.
      const sched::Schedule lowered =
          lower_candidate(spec, traffic, system, cand, strategy);
      if (const sched::VerifyReport report = sched::verify(lowered, vopts);
          !report.ok()) {
        LS_CHECK_MSG(false, "tune('%s'): finalist failed verify:\n%s",
                     spec.name.c_str(), report.to_string().c_str());
        LS_LOG_WARN("tune('%s'): skipping finalist that failed verify:\n%s",
                    spec.name.c_str(), report.to_string().c_str());
        continue;
      }
      const std::uint64_t sim_cycles = sys.execute(lowered).total_cycles;
      if (telemetry != nullptr) {
        telemetry->validations.push_back({est, sim_cycles, false});
      }
      ++out.validated;
      if (!have_best || sim_cycles < out.best_sim_cycles) {
        have_best = true;
        best_idx = out.validated - 1;
        out.best = cand;
        out.best_est_cycles = est;
        out.best_sim_cycles = sim_cycles;
      }
    }
    if (telemetry != nullptr && have_best) {
      telemetry->validations[best_idx].is_best = true;
    }
    if (!have_best) {
      // Every finalist was rejected by the static verifier (release builds
      // only — checked builds abort above). Fall back to the already-priced
      // kernel-wise baseline rather than returning garbage.
      out.best = base;
      out.best_est_cycles = out.baseline_est_cycles;
      out.best_sim_cycles = out.baseline_sim_cycles;
    }
  }
  validated_ctr.inc(out.validated);
  return out;
}

}  // namespace ls::tune
