#include "data/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ls::data {

using tensor::Shape;
using tensor::Tensor;

namespace {

/// Per-class smooth prototype: Gaussian blobs plus an oriented grating,
/// deterministic in (seed, class, channel).
struct Prototype {
  std::vector<float> pixels;  ///< C*H*W
};

Prototype make_prototype(const SyntheticSpec& spec, std::size_t cls) {
  util::Rng rng(util::hash_u64(spec.seed * 1315423911ull + cls));
  Prototype proto;
  proto.pixels.assign(spec.channels * spec.height * spec.width, 0.0f);
  const double H = static_cast<double>(spec.height);
  const double W = static_cast<double>(spec.width);

  for (std::size_t c = 0; c < spec.channels; ++c) {
    // 3 Gaussian blobs
    struct Blob {
      double cx, cy, sigma, amp;
    };
    std::vector<Blob> blobs;
    for (int b = 0; b < 3; ++b) {
      blobs.push_back({rng.uniform(0.2, 0.8) * W, rng.uniform(0.2, 0.8) * H,
                       rng.uniform(0.08, 0.22) * std::min(H, W),
                       rng.uniform(0.5, 1.0)});
    }
    // One oriented grating
    const double theta = rng.uniform(0.0, M_PI);
    const double freq = rng.uniform(1.5, 4.0) * 2.0 * M_PI / std::min(H, W);
    const double phase = rng.uniform(0.0, 2.0 * M_PI);
    const double grating_amp = rng.uniform(0.15, 0.35);

    for (std::size_t y = 0; y < spec.height; ++y) {
      for (std::size_t x = 0; x < spec.width; ++x) {
        double v = 0.0;
        for (const Blob& blob : blobs) {
          const double dx = static_cast<double>(x) - blob.cx;
          const double dy = static_cast<double>(y) - blob.cy;
          v += blob.amp *
               std::exp(-(dx * dx + dy * dy) / (2.0 * blob.sigma * blob.sigma));
        }
        const double proj = std::cos(theta) * static_cast<double>(x) +
                            std::sin(theta) * static_cast<double>(y);
        v += grating_amp * (0.5 + 0.5 * std::sin(freq * proj + phase));
        proto.pixels[(c * spec.height + y) * spec.width + x] =
            static_cast<float>(std::clamp(v, 0.0, 1.5));
      }
    }
  }
  return proto;
}

}  // namespace

Dataset Dataset::slice(std::size_t lo, std::size_t hi) const {
  if (lo > hi || hi > size()) throw std::out_of_range("dataset slice");
  const auto& shape = images.shape();
  const std::size_t per = shape[1] * shape[2] * shape[3];
  Dataset out;
  out.num_classes = num_classes;
  out.labels.assign(labels.begin() + static_cast<std::ptrdiff_t>(lo),
                    labels.begin() + static_cast<std::ptrdiff_t>(hi));
  out.images = Tensor(Shape{hi - lo, shape[1], shape[2], shape[3]});
  std::copy(images.data() + lo * per, images.data() + hi * per,
            out.images.data());
  return out;
}

Dataset make_synthetic(const SyntheticSpec& spec) {
  if (spec.samples == 0 || spec.num_classes == 0) {
    throw std::invalid_argument("empty synthetic spec");
  }
  std::vector<Prototype> protos;
  protos.reserve(spec.num_classes);
  for (std::size_t cls = 0; cls < spec.num_classes; ++cls) {
    protos.push_back(make_prototype(spec, cls));
  }

  Dataset ds;
  ds.num_classes = spec.num_classes;
  ds.images = Tensor(Shape{spec.samples, spec.channels, spec.height,
                           spec.width});
  ds.labels.resize(spec.samples);

  util::Rng rng(util::hash_u64(spec.seed ^ 0xa5a5a5a5a5a5a5a5ull) ^
                util::hash_u64(spec.sample_seed));
  const auto shift_span = static_cast<std::int64_t>(spec.max_shift);
  for (std::size_t i = 0; i < spec.samples; ++i) {
    const auto cls = static_cast<std::uint32_t>(i % spec.num_classes);
    ds.labels[i] = cls;
    const Prototype& proto = protos[cls];
    const std::int64_t dx = rng.uniform_int(-shift_span, shift_span);
    const std::int64_t dy = rng.uniform_int(-shift_span, shift_span);
    const double amp = rng.uniform(0.85, 1.15);
    for (std::size_t c = 0; c < spec.channels; ++c) {
      for (std::size_t y = 0; y < spec.height; ++y) {
        for (std::size_t x = 0; x < spec.width; ++x) {
          const std::int64_t sy = static_cast<std::int64_t>(y) - dy;
          const std::int64_t sx = static_cast<std::int64_t>(x) - dx;
          double v = 0.0;
          if (sy >= 0 && sy < static_cast<std::int64_t>(spec.height) &&
              sx >= 0 && sx < static_cast<std::int64_t>(spec.width)) {
            v = amp * proto.pixels[(c * spec.height +
                                    static_cast<std::size_t>(sy)) *
                                       spec.width +
                                   static_cast<std::size_t>(sx)];
          }
          v += rng.normal(0.0, spec.noise);
          ds.images.at4(i, c, y, x) =
              static_cast<float>(std::clamp(v, 0.0, 1.5));
        }
      }
    }
  }
  return ds;
}

Dataset mnist_like(std::size_t samples, std::uint64_t sample_seed) {
  SyntheticSpec spec;
  spec.channels = 1;
  spec.height = 28;
  spec.width = 28;
  spec.samples = samples;
  spec.sample_seed = sample_seed;
  spec.noise = 0.18;
  return make_synthetic(spec);
}

Dataset cifar_like(std::size_t samples, std::uint64_t sample_seed) {
  SyntheticSpec spec;
  spec.channels = 3;
  spec.height = 32;
  spec.width = 32;
  spec.samples = samples;
  spec.seed = 0x5bd1e995u;
  spec.sample_seed = sample_seed;
  spec.noise = 0.25;
  return make_synthetic(spec);
}

Dataset imagenet10_like(std::size_t samples, std::size_t hw,
                        std::uint64_t sample_seed) {
  SyntheticSpec spec;
  spec.channels = 3;
  spec.height = hw;
  spec.width = hw;
  spec.samples = samples;
  spec.seed = 0x9747b28cull;
  spec.sample_seed = sample_seed;
  spec.noise = 0.28;
  spec.max_shift = hw / 12;
  return make_synthetic(spec);
}

Batcher::Batcher(const Dataset& data, std::size_t batch_size,
                 std::uint64_t seed)
    : data_(data), batch_size_(batch_size), rng_(seed) {
  if (batch_size_ == 0) throw std::invalid_argument("zero batch size");
  order_.resize(data.size());
  std::iota(order_.begin(), order_.end(), 0u);
  reset();
}

void Batcher::reset() {
  // Fisher-Yates with our deterministic RNG.
  for (std::size_t i = order_.size(); i > 1; --i) {
    const std::size_t j = rng_.uniform_index(i);
    std::swap(order_[i - 1], order_[j]);
  }
  cursor_ = 0;
}

std::size_t Batcher::batches_per_epoch() const {
  return (data_.size() + batch_size_ - 1) / batch_size_;
}

bool Batcher::next(Tensor& images, std::vector<std::uint32_t>& labels) {
  if (cursor_ >= order_.size()) return false;
  const std::size_t count = std::min(batch_size_, order_.size() - cursor_);
  const auto& shape = data_.images.shape();
  const std::size_t per = shape[1] * shape[2] * shape[3];
  images = Tensor(Shape{count, shape[1], shape[2], shape[3]});
  labels.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t src = order_[cursor_ + i];
    std::copy(data_.images.data() + src * per,
              data_.images.data() + (src + 1) * per, images.data() + i * per);
    labels[i] = data_.labels[src];
  }
  cursor_ += count;
  return true;
}

}  // namespace ls::data
