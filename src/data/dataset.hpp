#pragma once
// Synthetic datasets standing in for MNIST / Cifar-10 / ImageNet10.
//
// The paper's experiments need datasets only as a vehicle: the claims are
// about the communication structure the networks *learn* under group-Lasso
// regularization, not about absolute benchmark accuracy. These generators
// produce deterministic, class-conditional images of the same shapes as the
// originals, with controllable difficulty, so the training-side experiments
// run end to end offline (see the substitution table in DESIGN.md).
//
// Generation scheme: each class gets a fixed smooth prototype (a sum of
// random Gaussian blobs and an oriented grating, derived from seed+class);
// each sample is the prototype under a small random translation, amplitude
// jitter, and additive pixel noise.

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace ls::data {

struct Dataset {
  tensor::Tensor images;  ///< {N, C, H, W}, values roughly in [0, 1]
  std::vector<std::uint32_t> labels;
  std::size_t num_classes = 0;

  std::size_t size() const { return labels.size(); }

  /// Rows [lo, hi) as a new dataset (shares nothing; copies).
  Dataset slice(std::size_t lo, std::size_t hi) const;
};

struct SyntheticSpec {
  std::size_t num_classes = 10;
  std::size_t channels = 1;
  std::size_t height = 28;
  std::size_t width = 28;
  std::size_t samples = 1024;
  double noise = 0.20;          ///< additive noise stddev
  std::size_t max_shift = 2;    ///< translation jitter in pixels
  /// Seeds the class *prototypes* — train and test splits of the same task
  /// must share it, or they describe different classification problems.
  std::uint64_t seed = 1;
  /// Seeds the per-sample jitter/noise — differs between train and test.
  std::uint64_t sample_seed = 0;
};

/// General generator.
Dataset make_synthetic(const SyntheticSpec& spec);

/// 28x28x1, 10 classes (MNIST stand-in). `sample_seed` picks the split
/// (use different values for train and test of the *same* task).
Dataset mnist_like(std::size_t samples, std::uint64_t sample_seed);

/// 32x32x3, 10 classes (Cifar-10 stand-in).
Dataset cifar_like(std::size_t samples, std::uint64_t sample_seed);

/// hw x hw x3, 10 classes (ImageNet10 stand-in; paper used 10 ILSVRC
/// classes).
Dataset imagenet10_like(std::size_t samples, std::size_t hw,
                        std::uint64_t sample_seed);

/// Shuffled minibatch iterator over a dataset.
class Batcher {
 public:
  Batcher(const Dataset& data, std::size_t batch_size, std::uint64_t seed);

  /// Starts a new epoch (reshuffles).
  void reset();

  /// Fills `images`/`labels` with the next batch; returns false at epoch
  /// end. The final batch of an epoch may be smaller than batch_size.
  bool next(tensor::Tensor& images, std::vector<std::uint32_t>& labels);

  std::size_t batches_per_epoch() const;

 private:
  const Dataset& data_;
  std::size_t batch_size_;
  util::Rng rng_;
  std::vector<std::uint32_t> order_;
  std::size_t cursor_ = 0;
};

}  // namespace ls::data
