#pragma once
// Inter-layer (pipeline) model parallelism — the alternative the paper
// argues against (§II.B: "pipelining layers with distinct hyper-parameters
// cause severe load-imbalance issue on cores").
//
// Layers are assigned to cores as contiguous *stages*; activations flow
// stage to stage. For a single-pass inference only one stage computes at a
// time, so pipelining buys latency nothing; its steady-state throughput is
// gated by the slowest stage, which the load imbalance of real networks
// makes poor. This module exists to reproduce that comparison
// quantitatively (bench_pipeline_vs_intra).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer_spec.hpp"

namespace ls::core {

/// Stage s covers compute layers [begin, end) (indices into the
/// compute-layer order) and runs on core s.
struct PipelineStage {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::uint64_t macs = 0;           ///< total MACs of the stage
  std::size_t boundary_bytes = 0;   ///< activation bytes leaving the stage
};

struct PipelineAssignment {
  std::vector<PipelineStage> stages;

  std::uint64_t max_stage_macs() const;
  double mean_stage_macs() const;
  /// max / mean stage MACs; 1.0 = perfectly balanced.
  double imbalance() const;
};

/// Splits the compute layers of `spec` into at most `cores` contiguous
/// stages minimizing the maximum stage MACs (optimal contiguous partition
/// via binary search + greedy feasibility). Stages never split a layer —
/// the imbalance this leaves behind *is* the phenomenon under study.
/// `bytes_per_value` sizes the stage-boundary activation transfers.
PipelineAssignment assign_pipeline(const nn::NetSpec& spec,
                                   std::size_t cores,
                                   std::size_t bytes_per_value);

}  // namespace ls::core
