#include "core/weight_groups.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/conv2d.hpp"
#include "nn/fc.hpp"

namespace ls::core {

double LayerGroupSet::block_norm(std::size_t p, std::size_t c) const {
  double sq = 0.0;
  for (std::size_t idx : block(p, c)) {
    const double w = weight->value[idx];
    sq += w * w;
  }
  return std::sqrt(sq);
}

bool LayerGroupSet::block_dead(std::size_t p, std::size_t c) const {
  for (std::size_t idx : block(p, c)) {
    if (weight->value[idx] != 0.0f) return false;
  }
  return true;
}

void LayerGroupSet::kill_block(std::size_t p, std::size_t c) {
  for (std::size_t idx : block(p, c)) weight->value[idx] = 0.0f;
  weight->bump();  // invalidate cached block-sparsity bitmaps
}

double LayerGroupSet::off_diagonal_dead_fraction() const {
  std::size_t dead = 0, total = 0;
  for (std::size_t p = 0; p < cores; ++p) {
    for (std::size_t c = 0; c < cores; ++c) {
      if (p == c) continue;
      if (block(p, c).empty()) continue;
      ++total;
      if (block_dead(p, c)) ++dead;
    }
  }
  return total ? static_cast<double>(dead) / static_cast<double>(total) : 0.0;
}

std::vector<LayerGroupSet> build_group_sets(nn::Network& net,
                                            const nn::NetSpec& spec,
                                            std::size_t cores) {
  if (cores == 0) throw std::invalid_argument("zero cores");
  const auto analysis = nn::analyze(spec);
  if (analysis.size() != net.num_layers()) {
    throw std::invalid_argument("spec/network layer count mismatch");
  }

  std::vector<LayerGroupSet> sets;
  bool seen_first_compute = false;
  std::size_t prev_out_units = spec.input.c;

  for (std::size_t li = 0; li < analysis.size(); ++li) {
    const nn::LayerAnalysis& a = analysis[li];
    if (!a.is_compute()) continue;
    if (!seen_first_compute) {
      // First compute layer reads the replicated input image: no traffic,
      // no groups.
      seen_first_compute = true;
      prev_out_units = a.out.c;
      continue;
    }
    if (a.spec.kind == nn::LayerKind::kConv && a.spec.groups > 1) {
      prev_out_units = a.out.c;
      continue;  // structure-level grouped layer; not group-Lasso material
    }

    LayerGroupSet set;
    set.layer_name = a.spec.name;
    set.cores = cores;
    set.in_units = prev_out_units;
    set.in_ranges = balanced_ranges(set.in_units, cores);
    set.block_indices.assign(cores * cores, {});

    nn::Layer& layer = net.layer(li);
    if (a.spec.kind == nn::LayerKind::kConv) {
      auto* conv = dynamic_cast<nn::Conv2D*>(&layer);
      if (conv == nullptr || conv->name() != a.spec.name) {
        throw std::logic_error("spec/network mismatch at " + a.spec.name);
      }
      if (conv->config().in_channels != set.in_units) {
        throw std::logic_error("conv in-channel mismatch at " + a.spec.name);
      }
      set.weight = &conv->weight();
      set.out_units = conv->config().out_channels;
      set.out_ranges = balanced_ranges(set.out_units, cores);
      const std::size_t cin = conv->config().in_channels;
      const std::size_t k = conv->config().kernel;
      for (std::size_t oc = 0; oc < set.out_units; ++oc) {
        const std::size_t c = owner_of(oc, set.out_units, cores);
        for (std::size_t ic = 0; ic < cin; ++ic) {
          const std::size_t p = owner_of(ic, set.in_units, cores);
          auto& block = set.block_indices[p * cores + c];
          const std::size_t base = (oc * cin + ic) * k * k;
          for (std::size_t kk = 0; kk < k * k; ++kk) {
            block.push_back(base + kk);
          }
        }
      }
    } else {
      auto* fc = dynamic_cast<nn::FullyConnected*>(&layer);
      if (fc == nullptr || fc->name() != a.spec.name) {
        throw std::logic_error("spec/network mismatch at " + a.spec.name);
      }
      set.weight = &fc->weight();
      set.out_units = fc->out_features();
      set.out_ranges = balanced_ranges(set.out_units, cores);
      const std::size_t in_features = fc->in_features();
      if (in_features % set.in_units != 0) {
        throw std::logic_error("fc features not a multiple of in units at " +
                               a.spec.name);
      }
      // Columns of unit u: [u*elems, (u+1)*elems) — the flattened H*W
      // footprint of feature map u.
      const std::size_t elems = in_features / set.in_units;
      for (std::size_t o = 0; o < set.out_units; ++o) {
        const std::size_t c = owner_of(o, set.out_units, cores);
        for (std::size_t u = 0; u < set.in_units; ++u) {
          const std::size_t p = owner_of(u, set.in_units, cores);
          auto& block = set.block_indices[p * cores + c];
          const std::size_t base = o * in_features + u * elems;
          for (std::size_t e = 0; e < elems; ++e) block.push_back(base + e);
        }
      }
    }
    prev_out_units = set.out_units;
    sets.push_back(std::move(set));
  }
  return sets;
}

}  // namespace ls::core
