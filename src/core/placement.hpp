#pragma once
// Communication-aware partition placement (extension).
//
// The paper bakes distance awareness into *training* (SS_Mask). A
// complementary, post-training lever is to choose *which mesh core* each
// partition lands on: once training fixes the live (producer, consumer)
// blocks, permuting partitions across cores changes every message's hop
// count. This module optimizes that permutation by simulated annealing
// over total byte-hops, letting the benches ask: how much of SS_Mask's
// energy advantage can plain placement recover for a distance-unaware SS
// model? (See bench_placement.)

#include <cstddef>
#include <vector>

#include "core/traffic.hpp"
#include "noc/topology.hpp"
#include "util/rng.hpp"

namespace ls::core {

/// Permutation: partition index (as used in InferenceTraffic messages) to
/// physical mesh core.
struct Placement {
  std::vector<std::size_t> partition_to_core;

  static Placement identity(std::size_t cores);

  std::size_t core_of(std::size_t partition) const {
    return partition_to_core.at(partition);
  }
  /// Validates it is a permutation of 0..n-1.
  bool valid() const;
};

/// Total bytes x hops of the traffic under a placement.
std::size_t placement_cost(const InferenceTraffic& traffic,
                           const Placement& placement,
                           const noc::MeshTopology& topo);

/// Rewrites message endpoints through the placement (and recomputes the
/// per-transition byte-hop totals).
InferenceTraffic remap_traffic(const InferenceTraffic& traffic,
                               const Placement& placement,
                               const noc::MeshTopology& topo);

/// Simulated annealing over pairwise swaps, minimizing placement_cost.
/// Deterministic for a given rng. Returns the best placement found
/// (never worse than identity).
Placement optimize_placement(const InferenceTraffic& traffic,
                             const noc::MeshTopology& topo, util::Rng& rng,
                             std::size_t iterations = 20000);

}  // namespace ls::core
