#include "core/partitioned_inference.hpp"

#include <stdexcept>

#include "core/partition.hpp"
#include "nn/conv2d.hpp"
#include "nn/fc.hpp"

namespace ls::core {

namespace {

using nn::Tensor;

/// True when consumer core range reads any non-zero weight of input unit
/// u (same rules as traffic.cpp's walker).
bool unit_live(const nn::Layer& layer, const nn::LayerAnalysis& a,
               std::size_t in_units, std::size_t u, const UnitRange& out_r) {
  if (a.spec.kind == nn::LayerKind::kConv) {
    const auto& conv = dynamic_cast<const nn::Conv2D&>(layer);
    const auto& cfg = conv.config();
    const std::size_t cin_g = in_units / cfg.groups;
    const std::size_t cout_g = cfg.out_channels / cfg.groups;
    const std::size_t grp = u / cin_g;
    const std::size_t icg = u % cin_g;
    const std::size_t k2 = cfg.kernel * cfg.kernel;
    const std::size_t lo = std::max(out_r.begin, grp * cout_g);
    const std::size_t hi = std::min(out_r.end, (grp + 1) * cout_g);
    for (std::size_t oc = lo; oc < hi; ++oc) {
      const float* w = conv.weight().value.data() + (oc * cin_g + icg) * k2;
      for (std::size_t i = 0; i < k2; ++i) {
        if (w[i] != 0.0f) return true;
      }
    }
    return false;
  }
  const auto& fc = dynamic_cast<const nn::FullyConnected&>(layer);
  const std::size_t in_features = fc.in_features();
  const std::size_t elems = in_features / in_units;
  for (std::size_t o = out_r.begin; o < out_r.end; ++o) {
    const float* w = fc.weight().value.data() + o * in_features + u * elems;
    for (std::size_t e = 0; e < elems; ++e) {
      if (w[e] != 0.0f) return true;
    }
  }
  return false;
}

/// Zeroes input unit u in a masked copy (4D channel or 2D column range).
void zero_unit(Tensor& t, std::size_t in_units, std::size_t u) {
  const auto& shape = t.shape();
  const std::size_t n_samples = shape[0];
  if (shape.rank() == 4) {
    const std::size_t per = shape[2] * shape[3];
    for (std::size_t n = 0; n < n_samples; ++n) {
      float* base = t.data() + (n * shape[1] + u) * per;
      for (std::size_t i = 0; i < per; ++i) base[i] = 0.0f;
    }
    return;
  }
  const std::size_t features = shape[1];
  const std::size_t elems = features / in_units;
  for (std::size_t n = 0; n < n_samples; ++n) {
    float* base = t.data() + n * features + u * elems;
    for (std::size_t i = 0; i < elems; ++i) base[i] = 0.0f;
  }
}

/// Copies consumer core range rows/channels from `part` into `whole`.
void copy_out_range(const Tensor& part, Tensor& whole,
                    const UnitRange& range) {
  const auto& shape = whole.shape();
  const std::size_t n_samples = shape[0];
  if (shape.rank() == 4) {
    const std::size_t per = shape[2] * shape[3];
    for (std::size_t n = 0; n < n_samples; ++n) {
      for (std::size_t c = range.begin; c < range.end; ++c) {
        const float* src = part.data() + (n * shape[1] + c) * per;
        float* dst = whole.data() + (n * shape[1] + c) * per;
        for (std::size_t i = 0; i < per; ++i) dst[i] = src[i];
      }
    }
    return;
  }
  const std::size_t features = shape[1];
  for (std::size_t n = 0; n < n_samples; ++n) {
    for (std::size_t f = range.begin; f < range.end; ++f) {
      whole.data()[n * features + f] = part.data()[n * features + f];
    }
  }
}

}  // namespace

PartitionedInference::PartitionedInference(nn::Network& net,
                                           const nn::NetSpec& spec,
                                           std::size_t cores,
                                           Granularity granularity,
                                           std::size_t bytes_per_value)
    : net_(net),
      spec_(spec),
      cores_(cores),
      granularity_(granularity),
      bytes_per_value_(bytes_per_value) {
  if (cores == 0) throw std::invalid_argument("zero cores");
  if (nn::analyze(spec).size() != net.num_layers()) {
    throw std::invalid_argument("spec/network layer count mismatch");
  }
}

Tensor PartitionedInference::run(const Tensor& input, bool quantize_fixed16,
                                 int frac_bits) {
  const auto analysis = nn::analyze(spec_);
  exchanges_.clear();

  Tensor current = input;
  bool seen_first_compute = false;
  std::size_t prev_out_units = spec_.input.c;

  for (std::size_t li = 0; li < analysis.size(); ++li) {
    const nn::LayerAnalysis& a = analysis[li];
    nn::Layer& layer = net_.layer(li);

    if (!a.is_compute()) {
      current = layer.forward(current, /*training=*/false);
      continue;
    }

    if (!seen_first_compute) {
      // Input image is replicated on every core: the sliced computation
      // is numerically identical to one whole-layer pass.
      seen_first_compute = true;
      prev_out_units = a.out.c;
      current = layer.forward(current, /*training=*/false);
      if (quantize_fixed16) current.quantize_fixed16(frac_bits);
      continue;
    }

    const std::size_t in_units = prev_out_units;
    const auto in_ranges = balanced_ranges(in_units, cores_);
    const std::size_t out_units = a.spec.kind == nn::LayerKind::kConv
                                      ? a.spec.out_channels
                                      : a.spec.out_features;
    const auto out_ranges = balanced_ranges(out_units, cores_);
    const std::size_t unit_elems = a.in.numel() / in_units;

    ExchangeRecord record;
    record.layer_name = a.spec.name;

    Tensor assembled(layer.output_shape(current.shape()), 0.0f);
    for (std::size_t c = 0; c < cores_; ++c) {
      if (out_ranges[c].count() == 0) continue;

      // Decide availability of every input unit on core c.
      std::vector<bool> available(in_units, false);
      // Feature-map granularity: unit u arrives iff live(u, c).
      // Block granularity: all of p's units arrive iff any is live.
      std::vector<bool> block_live(cores_, false);
      if (granularity_ == Granularity::kBlock) {
        for (std::size_t u = 0; u < in_units; ++u) {
          const std::size_t p = owner_of(u, in_units, cores_);
          if (p != c && !block_live[p] &&
              unit_live(layer, a, in_units, u, out_ranges[c])) {
            block_live[p] = true;
          }
        }
      }
      for (std::size_t u = 0; u < in_units; ++u) {
        const std::size_t p = owner_of(u, in_units, cores_);
        if (p == c) {
          available[u] = true;
          continue;
        }
        const bool sent =
            granularity_ == Granularity::kBlock
                ? block_live[p]
                : unit_live(layer, a, in_units, u, out_ranges[c]);
        if (sent) {
          available[u] = true;
          ++record.transfers;
          record.bytes += unit_elems * bytes_per_value_;
        }
      }

      Tensor masked = current;
      for (std::size_t u = 0; u < in_units; ++u) {
        if (!available[u]) zero_unit(masked, in_units, u);
      }
      const Tensor part = layer.forward(masked, /*training=*/false);
      copy_out_range(part, assembled, out_ranges[c]);
    }

    exchanges_.push_back(std::move(record));
    current = std::move(assembled);
    if (quantize_fixed16) current.quantize_fixed16(frac_bits);
    prev_out_units = out_units;
  }
  return current;
}

std::size_t PartitionedInference::total_bytes() const {
  std::size_t total = 0;
  for (const auto& e : exchanges_) total += e.bytes;
  return total;
}

}  // namespace ls::core
