#include "core/traffic.hpp"

#include <stdexcept>

#include "core/partition.hpp"
#include "nn/conv2d.hpp"
#include "nn/fc.hpp"

namespace ls::core {

namespace {

/// Aggregates per-(p,c) byte counts into messages.
class TransitionBuilder {
 public:
  TransitionBuilder(std::size_t cores, const noc::MeshTopology& topo)
      : cores_(cores), topo_(topo), bytes_(cores * cores, 0) {}

  void add(std::size_t p, std::size_t c, std::size_t bytes) {
    if (p == c) return;  // local data, no NoC traffic
    bytes_[p * cores_ + c] += bytes;
  }

  TransitionTraffic finish(std::string layer_name) const {
    TransitionTraffic t;
    t.layer_name = std::move(layer_name);
    for (std::size_t p = 0; p < cores_; ++p) {
      for (std::size_t c = 0; c < cores_; ++c) {
        const std::size_t b = bytes_[p * cores_ + c];
        if (b == 0) continue;
        t.messages.push_back({p, c, b, 0});
        t.total_bytes += b;
        t.total_byte_hops += b * topo_.hops(p, c);
      }
    }
    return t;
  }

 private:
  std::size_t cores_;
  const noc::MeshTopology& topo_;
  std::vector<std::size_t> bytes_;
};

}  // namespace

std::size_t InferenceTraffic::total_bytes() const {
  std::size_t total = 0;
  for (const auto& t : transitions) total += t.total_bytes;
  return total;
}

std::size_t InferenceTraffic::total_byte_hops() const {
  std::size_t total = 0;
  for (const auto& t : transitions) total += t.total_byte_hops;
  return total;
}

namespace {

/// Shared walker over compute-layer transitions. When `net` is null the
/// analysis is connectivity-only (dense / structure-level baseline);
/// otherwise liveness is read from the trained weights.
InferenceTraffic walk_transitions(nn::Network* net, const nn::NetSpec& spec,
                                  const noc::MeshTopology& topo,
                                  std::size_t bytes_per_value,
                                  Granularity granularity) {
  const std::size_t cores = topo.num_cores();
  const auto analysis = nn::analyze(spec);
  if (net != nullptr && analysis.size() != net->num_layers()) {
    throw std::invalid_argument("spec/network layer count mismatch");
  }

  InferenceTraffic traffic;
  bool seen_first_compute = false;
  std::size_t prev_out_units = spec.input.c;

  for (std::size_t li = 0; li < analysis.size(); ++li) {
    const nn::LayerAnalysis& a = analysis[li];
    if (!a.is_compute()) continue;
    if (!seen_first_compute) {
      seen_first_compute = true;
      prev_out_units = a.out.c;
      continue;
    }

    const std::size_t in_units = prev_out_units;
    const std::size_t unit_bytes =
        a.in.numel() / in_units * bytes_per_value;
    const auto in_ranges = balanced_ranges(in_units, cores);
    const std::size_t out_units = a.spec.kind == nn::LayerKind::kConv
                                      ? a.spec.out_channels
                                      : a.spec.out_features;
    const auto out_ranges = balanced_ranges(out_units, cores);

    TransitionBuilder builder(cores, topo);

    const nn::Layer* layer = net ? &net->layer(li) : nullptr;
    if (layer != nullptr && layer->name() != a.spec.name) {
      throw std::logic_error("spec/network mismatch at " + a.spec.name);
    }

    for (std::size_t c = 0; c < cores; ++c) {
      if (out_ranges[c].count() == 0) continue;
      for (std::size_t u = 0; u < in_units; ++u) {
        const std::size_t p = owner_of(u, in_units, cores);
        if (p == c) continue;

        bool live = true;
        if (a.spec.kind == nn::LayerKind::kConv) {
          // Connectivity restriction from channel grouping.
          const std::size_t groups = a.spec.groups;
          const std::size_t cin_g = in_units / groups;
          const std::size_t cout_g = out_units / groups;
          const std::size_t grp = u / cin_g;
          const std::size_t oc_lo = std::max(out_ranges[c].begin, grp * cout_g);
          const std::size_t oc_hi =
              std::min(out_ranges[c].end, (grp + 1) * cout_g);
          if (oc_lo >= oc_hi) {
            live = false;
          } else if (layer != nullptr) {
            const auto* conv = dynamic_cast<const nn::Conv2D*>(layer);
            const std::size_t k2 = a.spec.kernel * a.spec.kernel;
            const std::size_t icg = u % cin_g;
            live = false;
            for (std::size_t oc = oc_lo; oc < oc_hi && !live; ++oc) {
              const float* w =
                  conv->weight().value.data() + (oc * cin_g + icg) * k2;
              for (std::size_t i = 0; i < k2; ++i) {
                if (w[i] != 0.0f) {
                  live = true;
                  break;
                }
              }
            }
          }
        } else if (layer != nullptr) {
          const auto* fc = dynamic_cast<const nn::FullyConnected*>(layer);
          const std::size_t in_features = fc->in_features();
          const std::size_t elems = in_features / in_units;
          live = false;
          for (std::size_t o = out_ranges[c].begin;
               o < out_ranges[c].end && !live; ++o) {
            const float* w =
                fc->weight().value.data() + o * in_features + u * elems;
            for (std::size_t e = 0; e < elems; ++e) {
              if (w[e] != 0.0f) {
                live = true;
                break;
              }
            }
          }
        }
        if (live) builder.add(p, c, unit_bytes);
      }
    }

    // Block granularity: if any unit of p is live for c, send all of p's
    // units (coarser; matches the group-Lasso group definition exactly).
    if (granularity == Granularity::kBlock && net != nullptr) {
      TransitionTraffic fine = builder.finish(a.spec.name);
      TransitionBuilder coarse(cores, topo);
      for (const noc::Message& m : fine.messages) {
        coarse.add(m.src, m.dst, in_ranges[m.src].count() * unit_bytes);
      }
      traffic.transitions.push_back(coarse.finish(a.spec.name));
    } else {
      traffic.transitions.push_back(builder.finish(a.spec.name));
    }

    prev_out_units = out_units;
  }
  return traffic;
}

}  // namespace

InferenceTraffic traffic_dense(const nn::NetSpec& spec,
                               const noc::MeshTopology& topo,
                               std::size_t bytes_per_value) {
  return walk_transitions(nullptr, spec, topo, bytes_per_value,
                          Granularity::kFeatureMap);
}

InferenceTraffic traffic_live(nn::Network& net, const nn::NetSpec& spec,
                              const noc::MeshTopology& topo,
                              std::size_t bytes_per_value,
                              Granularity granularity) {
  return walk_transitions(&net, spec, topo, bytes_per_value, granularity);
}

}  // namespace ls::core
