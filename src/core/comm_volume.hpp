#pragma once
// Analytic data-volume model behind the paper's TABLE I ("data volume to
// transmit in NoC after layer partitioning and parallelization").
//
// Accounting (reverse-engineered from the published MLP/ConvNet/AlexNet
// entries, documented in EXPERIMENTS.md): at the transition into compute
// layer L, the previous layer's D output elements are spread over the P
// cores; synchronizing them costs
//
//     bytes(L) = D x 4 x (P - 1)^2 / P
//
// i.e. 4-byte (training-framework float) values with an all-to-all
// broadcast factor of (P-1)^2/P (= 14.06 for P = 16). The simulators use
// 16-bit fixed-point values instead — this model exists only to regenerate
// TABLE I's rows.

#include <cstddef>
#include <string>
#include <vector>

#include "nn/layer_spec.hpp"

namespace ls::core {

struct CommVolumeEntry {
  std::string layer_name;  ///< consumer compute layer
  std::size_t elements = 0;  ///< producer output elements synchronized
  double bytes = 0.0;
};

/// Per-transition data volume for the given core count.
std::vector<CommVolumeEntry> comm_volume_table(const nn::NetSpec& spec,
                                               std::size_t cores,
                                               double bytes_per_value = 4.0);

/// Total over all transitions.
double total_comm_volume(const nn::NetSpec& spec, std::size_t cores,
                         double bytes_per_value = 4.0);

}  // namespace ls::core
