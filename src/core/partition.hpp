#pragma once
// Balanced partitioning of a layer's channels/neurons across cores.
//
// The paper parallelizes a single inference by splitting each layer's
// kernels (output channels / output neurons) across the P cores (§III.B,
// Fig. 3). Core c therefore *owns* a contiguous range of each layer's
// output units; between layers, ownership of the produced feature maps
// follows the producer's split. We use balanced contiguous ranges, which
// also handle unit counts not divisible by P (some cores get one extra
// unit, trailing cores may get none).

#include <cstddef>
#include <vector>

namespace ls::core {

struct UnitRange {
  std::size_t begin = 0;
  std::size_t end = 0;  ///< half-open
  std::size_t count() const { return end - begin; }
  bool contains(std::size_t u) const { return u >= begin && u < end; }
  friend bool operator==(const UnitRange&, const UnitRange&) = default;
};

/// Splits `units` into `parts` balanced contiguous ranges. The first
/// (units % parts) ranges get one extra unit.
std::vector<UnitRange> balanced_ranges(std::size_t units, std::size_t parts);

/// Which part owns unit `u` under balanced_ranges(units, parts).
std::size_t owner_of(std::size_t u, std::size_t units, std::size_t parts);

}  // namespace ls::core
