#include "core/sparsity_profile.hpp"

namespace ls::core {

const LayerSparsity* SparsityProfile::find(
    const std::string& layer_name) const {
  for (const LayerSparsity& l : layers) {
    if (l.layer_name == layer_name) return &l;
  }
  return nullptr;
}

SparsityProfile profile_from_groups(
    const std::vector<LayerGroupSet>& groups) {
  SparsityProfile profile;
  profile.layers.reserve(groups.size());
  for (const LayerGroupSet& set : groups) {
    LayerSparsity layer;
    layer.layer_name = set.layer_name;
    layer.live_fraction.assign(set.cores, 1.0);
    std::size_t layer_total = 0, layer_live = 0;
    for (std::size_t c = 0; c < set.cores; ++c) {
      std::size_t total = 0, live = 0;
      for (std::size_t p = 0; p < set.cores; ++p) {
        const std::size_t n = set.block(p, c).size();
        if (n == 0) continue;
        total += n;
        if (!set.block_dead(p, c)) live += n;
      }
      layer_total += total;
      layer_live += live;
      if (total > 0) {
        layer.live_fraction[c] =
            static_cast<double>(live) / static_cast<double>(total);
      }
    }
    if (layer_total > 0) {
      layer.layer_live_fraction = static_cast<double>(layer_live) /
                                  static_cast<double>(layer_total);
    }
    profile.layers.push_back(std::move(layer));
  }
  return profile;
}

}  // namespace ls::core
