#include "core/grouping.hpp"

#include <stdexcept>

namespace ls::core {

nn::NetSpec apply_grouping(const nn::NetSpec& spec,
                           const std::vector<std::string>& conv_layers,
                           std::size_t n) {
  if (n == 0) throw std::invalid_argument("zero groups");
  nn::NetSpec out = spec;
  for (const std::string& name : conv_layers) {
    bool found = false;
    for (nn::LayerSpec& layer : out.layers) {
      if (layer.name != name) continue;
      if (layer.kind != nn::LayerKind::kConv) {
        throw std::invalid_argument(name + " is not a conv layer");
      }
      if (layer.out_channels % n != 0) {
        throw std::invalid_argument(name + " channels not divisible by " +
                                    std::to_string(n));
      }
      layer.groups = n;
      found = true;
      break;
    }
    if (!found) throw std::invalid_argument("no conv layer named " + name);
  }
  // Validate divisibility of *input* channels too (depends on the previous
  // layer), by running the analyzer.
  nn::analyze(out);
  return out;
}

std::vector<std::string> default_grouping_targets(const nn::NetSpec& spec) {
  std::vector<std::string> names;
  bool first = true;
  for (const nn::LayerSpec& layer : spec.layers) {
    if (layer.kind != nn::LayerKind::kConv) continue;
    if (first) {
      first = false;
      continue;
    }
    names.push_back(layer.name);
  }
  return names;
}

}  // namespace ls::core
