#pragma once
// Functional execution of a partitioned single-pass inference.
//
// The cycle-level models (ls::sim) answer "how fast"; this module answers
// "is it still correct": it actually runs the network as P per-core kernel
// slices with explicit feature-map exchanges between layers, so the
// paper's two correctness claims become checkable properties:
//
//   * §IV.A  — traditional parallelization "will produce the same output
//     result as the non-parallelized network";
//   * §IV.C  — transfers whose consumer-side weights are all zero can be
//     dropped without changing the inference result (the foundation of
//     communication-aware sparsified parallelization).
//
// A consumer core sees an input tensor in which every feature map it
// neither owns nor receives is zero; its kernel slice then runs on that
// masked view. The exchange log records exactly which maps crossed the
// NoC, and must agree with the analytic traffic model (traffic_live) —
// the test suite cross-validates the two.

#include <cstddef>
#include <string>
#include <vector>

#include "core/traffic.hpp"
#include "nn/layer_spec.hpp"
#include "nn/network.hpp"

namespace ls::core {

/// One layer transition's actual exchanges.
struct ExchangeRecord {
  std::string layer_name;          ///< consumer compute layer
  std::size_t transfers = 0;       ///< (feature map, consumer) pairs sent
  std::size_t bytes = 0;           ///< payload at bytes_per_value
};

class PartitionedInference {
 public:
  /// `net` must have been built from `spec`. The executor borrows both.
  PartitionedInference(nn::Network& net, const nn::NetSpec& spec,
                       std::size_t cores,
                       Granularity granularity = Granularity::kFeatureMap,
                       std::size_t bytes_per_value = 2);

  /// Runs a batch {N, C, H, W} through the partitioned network and
  /// returns the assembled logits. When `quantize_fixed16` is true, every
  /// layer boundary activation is additionally passed through 16-bit
  /// fixed-point quantization (frac_bits fractional bits), modeling the
  /// accelerator datapath.
  tensor::Tensor run(const tensor::Tensor& input,
                     bool quantize_fixed16 = false, int frac_bits = 8);

  /// Exchange log of the most recent run().
  const std::vector<ExchangeRecord>& exchanges() const { return exchanges_; }

  /// Total bytes exchanged in the most recent run (one inference;
  /// comparable to traffic_live(...).total_bytes() for batch size 1).
  std::size_t total_bytes() const;

 private:
  nn::Network& net_;
  const nn::NetSpec& spec_;
  std::size_t cores_;
  Granularity granularity_;
  std::size_t bytes_per_value_;
  std::vector<ExchangeRecord> exchanges_;
};

}  // namespace ls::core
