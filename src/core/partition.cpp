#include "core/partition.hpp"

#include <stdexcept>

#include "check/check.hpp"

namespace ls::core {

std::vector<UnitRange> balanced_ranges(std::size_t units, std::size_t parts) {
  if (parts == 0) throw std::invalid_argument("zero parts");
  std::vector<UnitRange> ranges(parts);
  const std::size_t base = units / parts;
  const std::size_t extra = units % parts;
  std::size_t cursor = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t count = base + (p < extra ? 1 : 0);
    ranges[p] = {cursor, cursor + count};
    cursor += count;
  }
  // Coverage/disjointness post-condition: the ranges are contiguous by
  // construction, so covering exactly [0, units) reduces to the cursor
  // landing on `units`, and the closed-form owner_of must agree with the
  // ranges it mirrors (both encode the fat-parts-first split).
  LS_CHECK_MSG(cursor == units,
               "balanced_ranges(%zu, %zu) covered %zu units", units, parts,
               cursor);
  if constexpr (check::kEnabled) {
    for (std::size_t p = 0; p < parts; ++p) {
      if (ranges[p].count() == 0) continue;
      LS_CHECK_MSG(owner_of(ranges[p].begin, units, parts) == p &&
                       owner_of(ranges[p].end - 1, units, parts) == p,
                   "owner_of disagrees with balanced_ranges for part %zu "
                   "of %zu over %zu units",
                   p, parts, units);
    }
  }
  return ranges;
}

std::size_t owner_of(std::size_t u, std::size_t units, std::size_t parts) {
  if (u >= units) throw std::out_of_range("unit index");
  const std::size_t base = units / parts;
  const std::size_t extra = units % parts;
  const std::size_t fat = (base + 1) * extra;  // units covered by fat parts
  if (u < fat) return u / (base + 1);
  if (base == 0) throw std::logic_error("unit beyond all ranges");
  return extra + (u - fat) / base;
}

}  // namespace ls::core
