#include "core/placement.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "check/check.hpp"

namespace ls::core {

Placement Placement::identity(std::size_t cores) {
  Placement p;
  p.partition_to_core.resize(cores);
  std::iota(p.partition_to_core.begin(), p.partition_to_core.end(), 0u);
  return p;
}

bool Placement::valid() const {
  std::vector<bool> seen(partition_to_core.size(), false);
  for (std::size_t core : partition_to_core) {
    if (core >= partition_to_core.size() || seen[core]) return false;
    seen[core] = true;
  }
  return true;
}

std::size_t placement_cost(const InferenceTraffic& traffic,
                           const Placement& placement,
                           const noc::MeshTopology& topo) {
  // A placement is a bijection partition -> core; a duplicate or
  // out-of-range core silently double-counts some link loads and drops
  // others, so the cost would be meaningless rather than wrong-and-loud.
  LS_CHECK_MSG(placement.valid(),
               "placement_cost over a non-bijective placement (%zu entries)",
               placement.partition_to_core.size());
  std::size_t cost = 0;
  for (const auto& t : traffic.transitions) {
    for (const auto& m : t.messages) {
      cost += m.bytes *
              topo.hops(placement.core_of(m.src), placement.core_of(m.dst));
    }
  }
  return cost;
}

InferenceTraffic remap_traffic(const InferenceTraffic& traffic,
                               const Placement& placement,
                               const noc::MeshTopology& topo) {
  if (!placement.valid() ||
      placement.partition_to_core.size() != topo.num_cores()) {
    throw std::invalid_argument("invalid placement");
  }
  InferenceTraffic out;
  out.transitions.reserve(traffic.transitions.size());
  for (const auto& t : traffic.transitions) {
    TransitionTraffic nt;
    nt.layer_name = t.layer_name;
    nt.total_bytes = t.total_bytes;
    for (const auto& m : t.messages) {
      noc::Message nm = m;
      nm.src = placement.core_of(m.src);
      nm.dst = placement.core_of(m.dst);
      nt.total_byte_hops += nm.bytes * topo.hops(nm.src, nm.dst);
      nt.messages.push_back(nm);
    }
    out.transitions.push_back(std::move(nt));
  }
  return out;
}

Placement optimize_placement(const InferenceTraffic& traffic,
                             const noc::MeshTopology& topo, util::Rng& rng,
                             std::size_t iterations) {
  const std::size_t n = topo.num_cores();
  Placement cur = Placement::identity(n);
  if (n < 2) return cur;

  // Aggregate partition-to-partition byte matrix once; cost deltas for a
  // swap then come from row/column sums instead of re-walking messages.
  std::vector<std::size_t> bytes(n * n, 0);
  for (const auto& t : traffic.transitions) {
    for (const auto& m : t.messages) bytes[m.src * n + m.dst] += m.bytes;
  }
  auto cost_of = [&](const Placement& p) {
    std::size_t c = 0;
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = 0; b < n; ++b) {
        if (bytes[a * n + b]) {
          c += bytes[a * n + b] * topo.hops(p.core_of(a), p.core_of(b));
        }
      }
    }
    return c;
  };

  std::size_t cur_cost = cost_of(cur);
  Placement best = cur;
  std::size_t best_cost = cur_cost;

  // Geometric cooling; temperature in byte-hop units.
  double temp = static_cast<double>(std::max<std::size_t>(1, cur_cost)) /
                static_cast<double>(n);
  const double cooling =
      std::pow(1e-4, 1.0 / static_cast<double>(std::max<std::size_t>(
                               1, iterations)));

  for (std::size_t it = 0; it < iterations; ++it) {
    const std::size_t a = rng.uniform_index(n);
    std::size_t b = rng.uniform_index(n);
    if (a == b) b = (b + 1) % n;
    std::swap(cur.partition_to_core[a], cur.partition_to_core[b]);
    const std::size_t new_cost = cost_of(cur);
    const double delta =
        static_cast<double>(new_cost) - static_cast<double>(cur_cost);
    if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temp)) {
      cur_cost = new_cost;
      if (cur_cost < best_cost) {
        best = cur;
        best_cost = cur_cost;
      }
    } else {
      std::swap(cur.partition_to_core[a], cur.partition_to_core[b]);
    }
    temp *= cooling;
  }
  // Annealing only ever swaps two entries of an identity permutation, so
  // the result must still be a bijection.
  LS_CHECK_MSG(best.valid(),
               "optimize_placement produced a non-bijective placement after "
               "%zu iterations",
               iterations);
  return best;
}

}  // namespace ls::core
