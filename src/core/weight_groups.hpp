#pragma once
// P x P weight-block groups for group-Lasso training and live-traffic
// analysis.
//
// For each compute layer after the first, the weight tensor is partitioned
// into P x P blocks: block (p, c) holds every weight connecting an input
// unit (feature map / neuron) owned by producer core p to an output unit
// owned by consumer core c (paper §IV.C.3: "we firstly partition the weight
// matrix into several groups of the same number as the square of the core
// number"). When block (p, c) is entirely zero, core p never needs to send
// its activations to core c.

#include <cstddef>
#include <string>
#include <vector>

#include "core/partition.hpp"
#include "nn/layer_spec.hpp"
#include "nn/network.hpp"

namespace ls::core {

/// Block groups of one compute layer.
struct LayerGroupSet {
  std::string layer_name;
  nn::Param* weight = nullptr;  ///< borrowed from the network
  std::size_t cores = 0;
  std::size_t in_units = 0;   ///< producer units (prev layer out channels)
  std::size_t out_units = 0;  ///< this layer's out channels / neurons
  std::vector<UnitRange> in_ranges;   ///< per producer core
  std::vector<UnitRange> out_ranges;  ///< per consumer core
  /// Flat weight indices of block (p, c), at [p * cores + c].
  std::vector<std::vector<std::size_t>> block_indices;

  const std::vector<std::size_t>& block(std::size_t p, std::size_t c) const {
    return block_indices[p * cores + c];
  }

  /// L2 norm of block (p, c).
  double block_norm(std::size_t p, std::size_t c) const;

  /// True if every weight in block (p, c) is exactly zero.
  bool block_dead(std::size_t p, std::size_t c) const;

  /// Zeroes all weights of block (p, c).
  void kill_block(std::size_t p, std::size_t c);

  /// Fraction of off-diagonal blocks that are dead.
  double off_diagonal_dead_fraction() const;
};

/// Builds group sets for every compute layer of `net` except the first
/// (whose input, the image, is replicated on all cores and induces no
/// traffic). `spec` must be the architecture `net` was built from — it
/// provides activation shapes. Grouped conv layers (groups > 1) are skipped:
/// structure-level parallelization already fixes their communication by
/// construction, and group-Lasso is not applied to them in the paper.
std::vector<LayerGroupSet> build_group_sets(nn::Network& net,
                                            const nn::NetSpec& spec,
                                            std::size_t cores);

}  // namespace ls::core
