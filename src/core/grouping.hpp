#pragma once
// Structure-level parallelization transform (paper §IV.B, Fig. 4).
//
// Rewrites an architecture so that selected conv layers are split into n
// independent channel groups. When n equals the core count and group i is
// mapped to core i (our balanced contiguous partition does exactly that),
// the transitions into those layers carry no inter-core traffic, at the
// price of removed cross-group connections (and hence possible accuracy
// loss, compensated by widening — paper TABLE III Parallel#3).

#include <string>
#include <vector>

#include "nn/layer_spec.hpp"

namespace ls::core {

/// Returns a copy of `spec` with `groups = n` on the named conv layers.
/// Throws if a named layer is missing, is not conv, or has channel counts
/// not divisible by n.
nn::NetSpec apply_grouping(const nn::NetSpec& spec,
                           const std::vector<std::string>& conv_layers,
                           std::size_t n);

/// The paper's heuristic (§IV.B): group the conv layers with
/// high-dimension kernels — every conv except the first, whose input is the
/// replicated image. Returns their names.
std::vector<std::string> default_grouping_targets(const nn::NetSpec& spec);

}  // namespace ls::core
