#pragma once
// Structured-sparsity summary consumed by the analytic cycle model
// (DESIGN.md "Sparse execution").
//
// Group-Lasso training kills whole (producer, consumer) weight blocks; a
// consumer core then executes only the MACs of its surviving blocks. This
// profile reduces a trained network's LayerGroupSets to the per-consumer
// live-weight fraction per layer, which CmpSystem::run_inference uses to
// discount each core's macs and weight_bytes. MACs scale uniformly with
// weights within a layer (each weight element fires once per output
// pixel), so the live-weight fraction *is* the live-MAC fraction.

#include <cstddef>
#include <string>
#include <vector>

#include "core/weight_groups.hpp"

namespace ls::core {

struct LayerSparsity {
  std::string layer_name;
  /// Live-weight (== live-MAC) fraction of each consumer core's partition,
  /// indexed by consumer core id; 1.0 = nothing pruned.
  std::vector<double> live_fraction;
  /// Live fraction over the whole layer's weights.
  double layer_live_fraction = 1.0;
};

struct SparsityProfile {
  std::vector<LayerSparsity> layers;

  /// Null when the layer is not profiled (e.g. the first compute layer,
  /// which build_group_sets never covers) — callers treat that as dense.
  const LayerSparsity* find(const std::string& layer_name) const;
  bool empty() const { return layers.empty(); }
};

/// Scans the group sets' weight tensors (block_dead) into a profile.
/// Reflects the weights at call time — rebuild after further training.
SparsityProfile profile_from_groups(const std::vector<LayerGroupSet>& groups);

}  // namespace ls::core
