#include "core/pipeline.hpp"

#include <algorithm>
#include <stdexcept>

namespace ls::core {

std::uint64_t PipelineAssignment::max_stage_macs() const {
  std::uint64_t m = 0;
  for (const auto& s : stages) m = std::max(m, s.macs);
  return m;
}

double PipelineAssignment::mean_stage_macs() const {
  if (stages.empty()) return 0.0;
  double total = 0.0;
  for (const auto& s : stages) total += static_cast<double>(s.macs);
  return total / static_cast<double>(stages.size());
}

double PipelineAssignment::imbalance() const {
  const double mean = mean_stage_macs();
  return mean > 0.0 ? static_cast<double>(max_stage_macs()) / mean : 1.0;
}

namespace {

/// True if the layer MAC sequence can be covered by <= parts contiguous
/// segments each with sum <= cap.
bool feasible(const std::vector<std::uint64_t>& macs, std::size_t parts,
              std::uint64_t cap) {
  std::size_t used = 1;
  std::uint64_t acc = 0;
  for (std::uint64_t m : macs) {
    if (m > cap) return false;
    if (acc + m > cap) {
      ++used;
      acc = 0;
      if (used > parts) return false;
    }
    acc += m;
  }
  return true;
}

}  // namespace

PipelineAssignment assign_pipeline(const nn::NetSpec& spec, std::size_t cores,
                                   std::size_t bytes_per_value) {
  if (cores == 0) throw std::invalid_argument("zero cores");
  const auto analysis = nn::analyze(spec);

  // Compute-layer MACs and the activation volume at each layer's output
  // (pool/relu downstream of a compute layer shrink what actually crosses
  // a stage boundary; we charge the volume entering the *next* compute
  // layer, consistent with the intra-layer traffic model).
  std::vector<std::uint64_t> macs;
  std::vector<std::size_t> boundary_elems;  // into next compute layer
  for (std::size_t i = 0; i < analysis.size(); ++i) {
    if (!analysis[i].is_compute()) continue;
    macs.push_back(analysis[i].macs);
    // Find the next compute layer's input volume.
    std::size_t elems = analysis[i].out.numel();
    for (std::size_t j = i + 1; j < analysis.size(); ++j) {
      if (analysis[j].is_compute()) {
        elems = analysis[j].in.numel();
        break;
      }
      elems = analysis[j].out.numel();
    }
    boundary_elems.push_back(elems);
  }
  if (macs.empty()) throw std::invalid_argument("no compute layers");

  // Binary-search the minimal cap; then greedily emit stages under it.
  std::uint64_t lo = *std::max_element(macs.begin(), macs.end());
  std::uint64_t hi = 0;
  for (std::uint64_t m : macs) hi += m;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (feasible(macs, cores, mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }

  PipelineAssignment out;
  PipelineStage cur;
  cur.begin = 0;
  for (std::size_t i = 0; i < macs.size(); ++i) {
    if (cur.macs + macs[i] > lo && cur.macs > 0) {
      cur.end = i;
      cur.boundary_bytes = boundary_elems[i - 1] * bytes_per_value;
      out.stages.push_back(cur);
      cur = PipelineStage{};
      cur.begin = i;
    }
    cur.macs += macs[i];
  }
  cur.end = macs.size();
  cur.boundary_bytes = 0;  // final stage emits the (tiny) logits
  out.stages.push_back(cur);
  return out;
}

}  // namespace ls::core
