#include "core/comm_volume.hpp"

namespace ls::core {

std::vector<CommVolumeEntry> comm_volume_table(const nn::NetSpec& spec,
                                               std::size_t cores,
                                               double bytes_per_value) {
  const auto analysis = nn::analyze(spec);
  const double p = static_cast<double>(cores);
  const double factor = (p - 1.0) * (p - 1.0) / p;

  std::vector<CommVolumeEntry> table;
  bool seen_first_compute = false;
  for (const nn::LayerAnalysis& a : analysis) {
    if (!a.is_compute()) continue;
    if (seen_first_compute) {
      CommVolumeEntry e;
      e.layer_name = a.spec.name;
      e.elements = a.in.numel();
      e.bytes = static_cast<double>(e.elements) * bytes_per_value * factor;
      table.push_back(e);
    }
    seen_first_compute = true;
  }
  return table;
}

double total_comm_volume(const nn::NetSpec& spec, std::size_t cores,
                         double bytes_per_value) {
  double total = 0.0;
  for (const auto& e : comm_volume_table(spec, cores, bytes_per_value)) {
    total += e.bytes;
  }
  return total;
}

}  // namespace ls::core
