#pragma once
// Layer-transition synchronization traffic of a partitioned inference.
//
// Between two consecutive compute layers, producer core p must send the
// feature maps it owns to every consumer core c whose kernels actually read
// them (paper Fig. 3). Three analyses:
//
// * traffic_dense   — connectivity only (from the architecture spec). For a
//   dense layer every off-core map is needed: this is the *traditional
//   parallelization* baseline. Grouped conv layers (structure-level
//   parallelization) only need maps within their group, which is what makes
//   them communication-free when group i is co-located with core i.
// * traffic_live    — from trained weights: feature map u owned by p is sent
//   to c only if some non-zero weight of c's kernels reads u (paper Fig. 5:
//   all-zero kernel slices make the transfer unnecessary). This is what the
//   group-Lasso sparsified networks (SS / SS_Mask) are evaluated with.
// * block granularity variant — liveness decided per (p, c) weight block
//   instead of per feature map (ablation; matches the group definition).

#include <cstddef>
#include <string>
#include <vector>

#include "noc/simulator.hpp"
#include "nn/layer_spec.hpp"
#include "nn/network.hpp"

namespace ls::core {

/// Liveness granularity for traffic_live.
enum class Granularity {
  kFeatureMap,  ///< per input feature map (default; what hardware would do)
  kBlock,       ///< per (producer core, consumer core) weight block
};

/// Traffic of one layer transition (into compute layer `layer_name`).
struct TransitionTraffic {
  std::string layer_name;  ///< consumer compute layer
  std::vector<noc::Message> messages;
  std::size_t total_bytes = 0;
  std::size_t total_byte_hops = 0;  ///< bytes x mesh hop distance
};

/// Whole-inference traffic. Each transition's messages inject at cycle 0
/// of their own burst — the system simulator runs the NoC once per
/// transition, matching the paper's layer-by-layer synchronization.
struct InferenceTraffic {
  std::vector<TransitionTraffic> transitions;
  std::size_t total_bytes() const;
  std::size_t total_byte_hops() const;
};

/// Traditional-parallelization traffic from the architecture alone.
InferenceTraffic traffic_dense(const nn::NetSpec& spec,
                               const noc::MeshTopology& topo,
                               std::size_t bytes_per_value);

/// Live traffic from trained weights (net must match spec).
InferenceTraffic traffic_live(nn::Network& net, const nn::NetSpec& spec,
                              const noc::MeshTopology& topo,
                              std::size_t bytes_per_value,
                              Granularity granularity = Granularity::kFeatureMap);

}  // namespace ls::core
