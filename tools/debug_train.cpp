// Scratch harness for calibrating training hyper-parameters on the
// synthetic datasets. Not part of the library deliverables.

#include <cstdio>
#include <cstdlib>

#include "nn/model_zoo.hpp"
#include "sim/experiment.hpp"
#include "train/trainer.hpp"

int main(int argc, char** argv) {
  using namespace ls;
  const double lr = argc > 1 ? std::atof(argv[1]) : 0.05;
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 3;
  const char* which = argc > 3 ? argv[3] : "mlp";

  nn::NetSpec spec = std::string(which) == "lenet" ? nn::lenet_expt_spec()
                     : std::string(which) == "convnet"
                         ? nn::convnet_expt_spec()
                         : nn::mlp_expt_spec();
  const data::Dataset train_set = sim::dataset_for(spec, 768, 1);
  const data::Dataset test_set = sim::dataset_for(spec, 256, 2);

  util::Rng rng(42);
  nn::Network net = nn::build_network(spec, rng);
  train::TrainConfig cfg;
  cfg.epochs = static_cast<std::size_t>(epochs);
  cfg.sgd.lr = lr;
  cfg.verbose = true;
  const auto report = train::train_classifier(net, train_set, test_set, cfg);
  std::printf("%s lr=%g epochs=%d -> train=%.3f test=%.3f\n", which, lr,
              epochs, report.train_accuracy, report.test_accuracy);
  for (double l : report.epoch_loss) std::printf("  loss %.4f\n", l);
  return 0;
}
