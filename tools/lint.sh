#!/usr/bin/env bash
# Lint gate (DESIGN.md "Correctness tooling"): clang-tidy over every
# translation unit in src/ (zero-warning policy via -warnings-as-errors)
# plus a clang-format drift check over all C++ sources. Usage:
#   tools/lint.sh [build-dir]
#
# The build dir only needs a configure (for compile_commands.json); this
# script runs one if it is missing. Tools are looked up as clang-tidy /
# clang-format or their -MAJOR suffixed names; a missing tool is a skip
# with a notice, not a failure, so the gate degrades gracefully on boxes
# with only gcc (CI installs both and runs the full gate).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"$repo_root/build-lint"}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

find_tool() {
  local base="$1"
  if command -v "$base" >/dev/null 2>&1; then
    echo "$base"
    return 0
  fi
  local v
  for v in 21 20 19 18 17 16 15 14; do
    if command -v "$base-$v" >/dev/null 2>&1; then
      echo "$base-$v"
      return 0
    fi
  done
  return 1
}

clang_tidy="$(find_tool clang-tidy || true)"
clang_format="$(find_tool clang-format || true)"
status=0
ran_any=0

cxx_sources() {
  find "$repo_root/src" "$repo_root/tests" "$repo_root/tools" \
    "$repo_root/bench" -name '*.cpp' -o -name '*.hpp' | sort
}

if [ -n "$clang_format" ]; then
  ran_any=1
  echo "== clang-format ($clang_format) drift check"
  if ! cxx_sources | xargs "$clang_format" --dry-run -Werror; then
    echo "clang-format: drift found — run: $clang_format -i <files>" >&2
    status=1
  fi
else
  echo "lint: clang-format not found — format check skipped" >&2
fi

if [ -n "$clang_tidy" ]; then
  ran_any=1
  if [ ! -f "$build_dir/compile_commands.json" ]; then
    cmake -S "$repo_root" -B "$build_dir" -DCMAKE_BUILD_TYPE=Release \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  echo "== clang-tidy ($clang_tidy) over src/ (warnings are errors)"
  # xargs -P parallelizes across TUs; each failure flips the exit status.
  if ! find "$repo_root/src" -name '*.cpp' | sort | xargs -P "$jobs" -I {} \
    "$clang_tidy" -p "$build_dir" --quiet -warnings-as-errors='*' {}; then
    status=1
  fi
else
  echo "lint: clang-tidy not found — static analysis skipped" >&2
fi

if [ "$ran_any" -eq 0 ]; then
  echo "lint: no lint tools available on this machine; nothing checked" >&2
  exit 0
fi
[ "$status" -eq 0 ] && echo "lint OK"
exit "$status"
