#!/usr/bin/env bash
# Lint gate (DESIGN.md "Static analysis"): clang-tidy over every
# translation unit in src/ (zero-warning policy via -warnings-as-errors),
# a clang-format drift check over all C++ sources, and the project-rule
# linter tools/lslint.py. Usage:
#   tools/lint.sh [build-dir]
#
# The build dir only needs a configure (for compile_commands.json); this
# script runs one if it is missing. Tools are looked up as clang-tidy /
# clang-format or their -MAJOR suffixed names. By default a missing tool
# is a skip with a notice so the gate degrades gracefully on boxes with
# only gcc; with LS_LINT_STRICT=1 (what CI sets) a missing tool is a hard
# failure — the gate must not silently pass because the runner image
# dropped a package.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"$repo_root/build-lint"}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
strict="${LS_LINT_STRICT:-0}"

find_tool() {
  local base="$1"
  if command -v "$base" >/dev/null 2>&1; then
    echo "$base"
    return 0
  fi
  local v
  for v in 21 20 19 18 17 16 15 14; do
    if command -v "$base-$v" >/dev/null 2>&1; then
      echo "$base-$v"
      return 0
    fi
  done
  return 1
}

missing_tool() {
  local name="$1" what="$2"
  if [ "$strict" = "1" ]; then
    echo "lint: $name not found — $what REQUIRED under LS_LINT_STRICT=1" >&2
    return 1
  fi
  echo "lint: $name not found — $what skipped" >&2
  return 0
}

clang_tidy="$(find_tool clang-tidy || true)"
clang_format="$(find_tool clang-format || true)"
python3_bin="$(command -v python3 || true)"
status=0
ran_any=0

cxx_sources() {
  find "$repo_root/src" "$repo_root/tests" "$repo_root/tools" \
    "$repo_root/bench" -name '*.cpp' -o -name '*.hpp' | sort
}

if [ -n "$python3_bin" ]; then
  ran_any=1
  echo "== lslint (project rules) over src/"
  if ! "$python3_bin" "$repo_root/tools/lslint.py" --self-test; then
    status=1
  fi
  if ! "$python3_bin" "$repo_root/tools/lslint.py" "$repo_root/src"; then
    status=1
  fi
else
  missing_tool python3 "project-rule lint" || status=1
fi

if [ -n "$clang_format" ]; then
  ran_any=1
  echo "== clang-format ($clang_format) drift check"
  if ! cxx_sources | xargs "$clang_format" --dry-run -Werror; then
    echo "clang-format: drift found — run: $clang_format -i <files>" >&2
    status=1
  fi
else
  missing_tool clang-format "format check" || status=1
fi

if [ -n "$clang_tidy" ]; then
  ran_any=1
  if [ ! -f "$build_dir/compile_commands.json" ]; then
    cmake -S "$repo_root" -B "$build_dir" -DCMAKE_BUILD_TYPE=Release \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  echo "== clang-tidy ($clang_tidy) over src/ (warnings are errors)"
  # xargs -P parallelizes across TUs; each failure flips the exit status.
  if ! find "$repo_root/src" -name '*.cpp' | sort | xargs -P "$jobs" -I {} \
    "$clang_tidy" -p "$build_dir" --quiet -warnings-as-errors='*' {}; then
    status=1
  fi
else
  missing_tool clang-tidy "static analysis" || status=1
fi

if [ "$ran_any" -eq 0 ] && [ "$status" -eq 0 ]; then
  echo "lint: no lint tools available on this machine; nothing checked" >&2
  exit 0
fi
[ "$status" -eq 0 ] && echo "lint OK"
exit "$status"
