// Command-line experiment runner: exposes the library's experiment
// pipelines with every knob on the command line, for exploration beyond
// the fixed bench configurations.
//
//   ls_experiment sparsified --net lenet --cores 16 --lambda 0.5 \
//       --epochs 4 --samples 768 --seed 42 [--exponent 1.0] [--block]
//   ls_experiment structure --c1 32 --c2 64 --c3 128 --groups 16 --cores 16
//   ls_experiment traffic --net alexnet --cores 16
//   ls_experiment pipeline --net alexnet --cores 16
//   ls_experiment infer --net alexnet --cores 16 [--overlap] [--no-cache]
//       [--schedule-dump plan.json]
//   ls_experiment stream --net convnet --cores 16 --requests 8
//   ls_experiment tune --net convnet --cores 64 --budget 2000 --seed 7
//
// Multi-chip packages: `--chips C` on infer/stream/tune/profile splits the
// --cores total across C identical chips (C must divide it), lowers the
// net as a stage pipeline via sched::lower_pipelined, and prices stage
// boundaries on the package's serial inter-chip links. The default
// `--chips 1` is the flat machine, bit-identical to builds before the
// hierarchy existed.
//
// Tuned schedules: `tune` searches per-layer partition dims x core
// placement x overlap on the analytic cost model, validates the winners
// flit-level, and records the best in a JSON schedule cache
// (--tuned-cache PATH, else $LS_TUNE_CACHE, else tuned_schedules.json).
// `infer` and `stream` transparently execute a cached tuned schedule for
// their exact (net, cores, strategy, NoC) configuration and fall back
// bit-exactly to the kernel-wise schedule when the store has no entry
// (--no-tuned skips the lookup entirely).
//
// Observability: `--trace out.json` writes a Chrome-trace/Perfetto timeline
// and `--metrics out.json` dumps the process metrics registry (counters,
// histograms, NoC link heatmap) when the run finishes. The LS_TRACE /
// LS_METRICS environment variables do the same for any command.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.hpp"
#include "core/traffic.hpp"
#include "nn/layer_spec.hpp"
#include "nn/model_zoo.hpp"
#include "noc/topology.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "prof/attribution.hpp"
#include "prof/model_error.hpp"
#include "prof/report.hpp"
#include "sched/builders.hpp"
#include "sched/cost_model.hpp"
#include "sched/schedule.hpp"
#include "sched/verify.hpp"
#include "sim/experiment.hpp"
#include "sim/pipeline_model.hpp"
#include "sim/system.hpp"
#include "tune/schedule_cache.hpp"
#include "tune/tuner.hpp"
#include "util/json_in.hpp"
#include "util/table.hpp"

namespace {

using namespace ls;

struct Args {
  std::map<std::string, std::string> kv;
  bool flag(const std::string& name) const { return kv.count("--" + name); }
  std::string str(const std::string& name, const std::string& dflt) const {
    const auto it = kv.find("--" + name);
    return it == kv.end() ? dflt : it->second;
  }
  double num(const std::string& name, double dflt) const {
    const auto it = kv.find("--" + name);
    return it == kv.end() ? dflt : std::atof(it->second.c_str());
  }
};

Args parse(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.kv[key] = argv[++i];
    } else {
      args.kv[key] = "1";
    }
  }
  return args;
}

nn::NetSpec expt_net(const std::string& name) {
  if (name == "mlp") return nn::mlp_expt_spec();
  if (name == "lenet") return nn::lenet_expt_spec();
  if (name == "convnet") return nn::convnet_expt_spec();
  if (name == "caffenet") return nn::caffenet_expt_spec();
  throw std::invalid_argument("unknown experiment net: " + name +
                              " (mlp|lenet|convnet|caffenet)");
}

nn::NetSpec analytic_net(const std::string& name) {
  if (name == "mlp") return nn::mlp_spec();
  if (name == "lenet") return nn::lenet_spec();
  if (name == "convnet") return nn::convnet_spec();
  if (name == "alexnet") return nn::alexnet_spec();
  if (name == "vgg19") return nn::vgg19_spec();
  throw std::invalid_argument("unknown analytic net: " + name +
                              " (mlp|lenet|convnet|alexnet|vgg19)");
}

int cmd_sparsified(const Args& args) {
  const nn::NetSpec spec = expt_net(args.str("net", "mlp"));
  sim::ExperimentConfig cfg;
  cfg.cores = static_cast<std::size_t>(args.num("cores", 16));
  cfg.train.epochs = static_cast<std::size_t>(args.num("epochs", 4));
  cfg.lambda_ss = args.num("lambda", 0.5);
  cfg.lambda_mask = args.num("lambda", 0.5);
  cfg.mask_exponent = args.num("exponent", 1.0);
  cfg.granularity = args.flag("block") ? core::Granularity::kBlock
                                       : core::Granularity::kFeatureMap;
  cfg.seed = static_cast<std::uint64_t>(args.num("seed", 42));
  cfg.verbose = args.flag("verbose");
  const auto samples = static_cast<std::size_t>(args.num("samples", 768));

  const auto train_set = sim::dataset_for(spec, samples, 1);
  const auto test_set = sim::dataset_for(spec, samples / 3, 2);
  const auto outcomes =
      sim::run_sparsified_experiment(spec, train_set, test_set, cfg);

  util::Table t(spec.name + " on " + std::to_string(cfg.cores) + " cores");
  t.set_header({"scheme", "accuracy", "traffic", "speedup", "energy-red",
                "avg-hops", "dead-blocks"});
  for (const auto& o : outcomes) {
    t.add_row({o.scheme, util::fmt_percent(o.accuracy, 1),
               util::fmt_percent(o.traffic_rate), util::fmt_speedup(o.speedup),
               util::fmt_percent(o.comm_energy_reduction),
               util::fmt_double(o.mean_traffic_hops, 2),
               util::fmt_percent(o.dead_block_fraction)});
  }
  t.print();
  return 0;
}

int cmd_structure(const Args& args) {
  const auto c1 = static_cast<std::size_t>(args.num("c1", 32));
  const auto c2 = static_cast<std::size_t>(args.num("c2", 64));
  const auto c3 = static_cast<std::size_t>(args.num("c3", 128));
  const auto groups = static_cast<std::size_t>(args.num("groups", 16));
  sim::ExperimentConfig cfg;
  cfg.cores = static_cast<std::size_t>(args.num("cores", 16));
  cfg.train.epochs = static_cast<std::size_t>(args.num("epochs", 3));
  cfg.seed = static_cast<std::uint64_t>(args.num("seed", 42));

  const nn::NetSpec dense = nn::convnet_variant_expt_spec(c1, c2, c3, 1);
  const nn::NetSpec grouped =
      nn::convnet_variant_expt_spec(c1, c2, c3, groups);
  const auto samples = static_cast<std::size_t>(args.num("samples", 768));
  const auto train_set = sim::dataset_for(dense, samples, 1);
  const auto test_set = sim::dataset_for(dense, samples / 3, 2);

  const auto base = sim::run_structure_level_variant(dense, train_set,
                                                     test_set, cfg, nullptr);
  const auto var = sim::run_structure_level_variant(grouped, train_set,
                                                    test_set, cfg, &base);
  util::Table t("structure-level: " + grouped.name);
  t.set_header({"variant", "accuracy", "speedup", "energy-red"});
  t.add_row({"n=1", util::fmt_double(base.accuracy, 3), "1x", "0%"});
  t.add_row({"n=" + std::to_string(groups), util::fmt_double(var.accuracy, 3),
             util::fmt_speedup(var.speedup, 1),
             util::fmt_percent(var.comm_energy_reduction)});
  t.print();
  return 0;
}

int cmd_traffic(const Args& args) {
  const nn::NetSpec spec = analytic_net(args.str("net", "alexnet"));
  const auto cores = static_cast<std::size_t>(args.num("cores", 16));
  const noc::MeshTopology topo = noc::MeshTopology::for_cores(cores);
  const auto traffic = core::traffic_dense(spec, topo, 2);
  util::Table t(spec.name + " dense traffic, " + std::to_string(cores) +
                " cores (16-bit values)");
  t.set_header({"transition into", "bytes", "byte-hops", "messages"});
  for (const auto& tr : traffic.transitions) {
    t.add_row({tr.layer_name, util::fmt_bytes(double(tr.total_bytes)),
               util::fmt_bytes(double(tr.total_byte_hops)),
               std::to_string(tr.messages.size())});
  }
  t.print();
  std::printf("total: %s\n",
              util::fmt_bytes(double(traffic.total_bytes())).c_str());
  return 0;
}

int cmd_pipeline(const Args& args) {
  const nn::NetSpec spec = analytic_net(args.str("net", "alexnet"));
  sim::SystemConfig cfg;
  cfg.cores = static_cast<std::size_t>(args.num("cores", 16));
  const auto assignment =
      core::assign_pipeline(spec, cfg.cores, cfg.bytes_per_value);
  const auto r = sim::run_pipeline(spec, assignment, cfg);
  util::Table t(spec.name + " pipeline on " + std::to_string(cfg.cores) +
                " cores");
  t.set_header({"stage", "layers", "compute-cyc", "transfer-cyc"});
  for (std::size_t s = 0; s < assignment.stages.size(); ++s) {
    t.add_row({std::to_string(s),
               std::to_string(assignment.stages[s].begin) + ".." +
                   std::to_string(assignment.stages[s].end),
               std::to_string(r.stage_compute_cycles[s]),
               std::to_string(r.stage_transfer_cycles[s])});
  }
  t.print();
  std::printf("single-pass %llu cyc, interval %llu cyc, imbalance %.2f\n",
              static_cast<unsigned long long>(r.single_pass_cycles),
              static_cast<unsigned long long>(r.initiation_interval),
              r.load_imbalance);
  return 0;
}

/// Applies the shared --cores / --chips / --no-cache knobs. CmpSystem's
/// constructor rejects a chip count that cannot tile the cores.
void apply_system_args(const Args& args, sim::SystemConfig* cfg) {
  cfg->cores = static_cast<std::size_t>(args.num("cores", 16));
  cfg->chips = static_cast<std::size_t>(args.num("chips", 1));
  if (args.flag("no-cache")) cfg->noc_result_cache = false;
}

std::string system_desc(const sim::SystemConfig& cfg) {
  std::string out = std::to_string(cfg.cores) + " cores";
  if (cfg.chips > 1) {
    out += " (" + std::to_string(cfg.chips) + " chips x " +
           std::to_string(cfg.cores / cfg.chips) + ")";
  }
  return out;
}

std::string tuned_cache_path(const Args& args) {
  const std::string flag = args.str("tuned-cache", "");
  if (!flag.empty()) return flag;
  const char* env = std::getenv("LS_TUNE_CACHE");
  if (env != nullptr && env[0] != '\0') return env;
  return "tuned_schedules.json";
}

tune::CacheKey tune_key(const nn::NetSpec& spec,
                        const sim::SystemConfig& cfg) {
  tune::CacheKey key;
  key.net = spec.name;
  key.cores = cfg.cores;
  key.strategy = sched::Strategy::kTraditional;
  key.noc = cfg.noc;
  key.noc_clock_divider = cfg.noc_clock_divider;
  key.chips = cfg.chips;
  return key;
}

/// Transparent tuned-schedule pickup for infer/stream: on a store hit the
/// cached candidate is lowered against this exact traffic; on a miss (or
/// --no-tuned) the untuned kernel-wise schedule is returned unchanged —
/// bit-exact with the historical path.
sched::Schedule schedule_for_run(const Args& args, const nn::NetSpec& spec,
                                 const sim::SystemConfig& cfg,
                                 const sim::CmpSystem& system,
                                 const core::InferenceTraffic& traffic) {
  static obs::Counter& hits =
      obs::Registry::instance().counter("tune.cache_hits");
  static obs::Counter& misses =
      obs::Registry::instance().counter("tune.cache_misses");
  if (!args.flag("no-tuned")) {
    tune::ScheduleCache cache;
    std::string error;
    if (!cache.load_file(tuned_cache_path(args), &error)) {
      std::fprintf(stderr, "warning: %s (running untuned)\n", error.c_str());
    } else if (const tune::CacheEntry* e = cache.find(tune_key(spec, cfg))) {
      hits.inc();
      std::printf("using tuned schedule from %s (est %llu cyc, validated "
                  "%llu cyc)\n",
                  tuned_cache_path(args).c_str(),
                  static_cast<unsigned long long>(e->est_cycles),
                  static_cast<unsigned long long>(e->sim_cycles));
      return tune::lower_candidate(spec, traffic, cfg, e->candidate,
                                   sched::Strategy::kTraditional);
    }
    misses.inc();
  }
  return system.build_schedule(spec, traffic);
}

int cmd_infer(const Args& args) {
  const nn::NetSpec spec = analytic_net(args.str("net", "alexnet"));
  sim::SystemConfig cfg;
  apply_system_args(args, &cfg);
  cfg.overlap_comm = args.flag("overlap");
  const sim::CmpSystem system(cfg);
  const auto traffic =
      core::traffic_dense(spec, system.topology(), cfg.bytes_per_value);
  const sched::Schedule schedule =
      schedule_for_run(args, spec, cfg, system, traffic);
  const std::string dump_path = args.str("schedule-dump", "");
  if (!dump_path.empty()) {
    std::FILE* f = std::fopen(dump_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot open %s for writing\n",
                   dump_path.c_str());
      return 1;
    }
    // The dump carries the analytic scorer's per-event cycle estimates
    // alongside the structure, so a plan can be inspected without
    // re-running the flit simulation.
    const sched::CycleEstimate estimate =
        sched::estimate_cycles(schedule, tune::cost_model_for(cfg));
    const std::string json = sched::to_json(schedule, &estimate);
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("schedule (%zu events, %s) dumped to %s\n",
                schedule.events.size(), sched::to_string(schedule.strategy),
                dump_path.c_str());
  }
  const sim::InferenceResult r = system.execute(schedule);

  util::Table t(spec.name + " inference on " + system_desc(cfg));
  t.set_header({"layer", "compute-cyc", "comm-cyc", "blocking-cyc", "traffic",
                "noc-energy"});
  for (const auto& tl : r.layers) {
    t.add_row({tl.layer_name, std::to_string(tl.compute_cycles),
               std::to_string(tl.comm_cycles),
               std::to_string(tl.blocking_comm_cycles),
               util::fmt_bytes(double(tl.traffic_bytes)),
               util::fmt_double(tl.noc_energy_pj / 1e6, 2) + " uJ"});
  }
  t.print();
  std::printf(
      "total %llu cyc (compute %llu + blocking comm %llu), comm fraction "
      "%.1f%%, energy %.2f uJ\n",
      static_cast<unsigned long long>(r.total_cycles),
      static_cast<unsigned long long>(r.compute_cycles),
      static_cast<unsigned long long>(r.comm_cycles),
      100.0 * r.comm_fraction(), r.total_energy_pj() / 1e6);

  // Router-total flit heatmap of the mesh, accumulated by the metrics
  // registry from the per-link counts of every simulated burst.
  const obs::LinkHeatmap hm = obs::Registry::instance().link_heatmap();
  if (hm.cols > 0 && hm.rows > 0) {
    std::printf("\nNoC flit heatmap (%zux%zu mesh, flits per router):\n",
                hm.cols, hm.rows);
    for (std::size_t y = 0; y < hm.rows; ++y) {
      for (std::size_t x = 0; x < hm.cols; ++x) {
        std::printf("  %10llu", static_cast<unsigned long long>(
                                    hm.router_total(y * hm.cols + x)));
      }
      std::printf("\n");
    }
  }
  return 0;
}

int cmd_stream(const Args& args) {
  const nn::NetSpec spec = analytic_net(args.str("net", "convnet"));
  sim::SystemConfig cfg;
  apply_system_args(args, &cfg);
  const auto requests = static_cast<std::size_t>(args.num("requests", 8));
  const sim::CmpSystem system(cfg);
  const auto traffic =
      core::traffic_dense(spec, system.topology(), cfg.bytes_per_value);
  const sched::Schedule schedule =
      schedule_for_run(args, spec, cfg, system, traffic);
  const sim::StreamResult s = system.run_stream(schedule, requests);

  util::Table t(spec.name + " stream of " + std::to_string(requests) +
                " requests on " + system_desc(cfg));
  t.set_header({"metric", "value"});
  t.add_row({"single-pass latency",
             std::to_string(s.single_pass.total_cycles) + " cyc"});
  t.add_row({"pipeline fill", std::to_string(s.fill_cycles) + " cyc"});
  t.add_row({"makespan", std::to_string(s.makespan_cycles) + " cyc"});
  t.add_row({"throughput", util::fmt_double(s.throughput_per_mcycle, 2) +
                               " inf/Mcyc"});
  t.add_row({"core occupancy", util::fmt_percent(s.compute_occupancy)});
  t.add_row({"NoC occupancy", util::fmt_percent(s.noc_occupancy)});
  if (cfg.chips > 1) {
    t.add_row({"inter-chip link occupancy",
               util::fmt_percent(s.inter_chip_occupancy)});
  }
  t.add_row({"speedup vs back-to-back",
             util::fmt_speedup(s.speedup_vs_back_to_back)});
  t.print();
  return 0;
}

int cmd_tune(const Args& args) {
  const nn::NetSpec spec = analytic_net(args.str("net", "convnet"));
  sim::SystemConfig cfg;
  apply_system_args(args, &cfg);
  cfg.overlap_comm = args.flag("overlap");
  const sim::CmpSystem system(cfg);
  const auto traffic =
      core::traffic_dense(spec, system.topology(), cfg.bytes_per_value);

  tune::TunerConfig tcfg;
  tcfg.budget = static_cast<std::uint64_t>(args.num("budget", 2000));
  tcfg.restarts = static_cast<std::size_t>(args.num("restarts", 4));
  tcfg.top_k = static_cast<std::size_t>(args.num("top-k", 3));
  tcfg.seed = static_cast<std::uint64_t>(args.num("seed", 0x4c535343));
  const tune::TuneOutcome out = tune::tune(spec, traffic, cfg, tcfg);

  util::Table t("tuned " + spec.name + " on " + system_desc(cfg));
  t.set_header({"schedule", "est-cyc", "sim-cyc", "speedup"});
  t.add_row({"kernel-wise baseline", std::to_string(out.baseline_est_cycles),
             std::to_string(out.baseline_sim_cycles), "1x"});
  t.add_row({"tuned", std::to_string(out.best_est_cycles),
             std::to_string(out.best_sim_cycles),
             util::fmt_speedup(out.speedup_sim())});
  t.print();
  std::string dims;
  for (const sched::PartitionDim d : out.best.layer_dims) {
    dims += dims.empty() ? "" : ",";
    dims += sched::to_string(d);
  }
  std::printf("dims: [%s]  overlap: %s  evals: %llu  validated: %zu\n",
              dims.c_str(), out.best.overlap_comm ? "on" : "off",
              static_cast<unsigned long long>(out.evals), out.validated);

  const std::string path = tuned_cache_path(args);
  tune::ScheduleCache cache;
  std::string error;
  if (!cache.load_file(path, &error)) {
    // A stale-format store is exactly what this retune replaces: warn,
    // start fresh, and let the save below rewrite it at the current
    // version. (verify/infer keep their own policies: hard fail / miss.)
    std::fprintf(stderr, "warning: %s (starting a fresh store)\n",
                 error.c_str());
    cache = tune::ScheduleCache{};
  }
  tune::CacheEntry entry;
  entry.candidate = out.best;
  entry.est_cycles = out.best_est_cycles;
  entry.sim_cycles = out.best_sim_cycles;
  entry.baseline_sim_cycles = out.baseline_sim_cycles;
  entry.seed = tcfg.seed;
  entry.budget = tcfg.budget;
  cache.put(tune_key(spec, cfg), entry);
  if (!cache.save_file(path)) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("best schedule cached in %s (%zu entries)\n", path.c_str(),
              cache.size());
  return 0;
}

/// Audits one cache entry: parse the canonical key, rebuild the system it
/// targets, structurally pre-validate the candidate, lower it against
/// freshly derived traffic, and run the static verifier. Returns "" when
/// the entry is sound, else newline-terminated diagnostic lines.
///
/// The pre-validation matters in release builds: the lowering's own
/// LS_CHECK guards compile out there, so a cache entry with the wrong
/// layer-dim count or a bogus placement would index out of bounds long
/// before the verifier ever saw a schedule.
std::string audit_entry(const std::string& key_string,
                        const tune::CacheEntry& entry) {
  tune::CacheKey key;
  if (!tune::parse_cache_key(key_string, &key)) {
    return "        non-canonical cache key\n";
  }
  // Cache keys carry the spec's display name (tune_key uses spec.name,
  // e.g. "ConvNet"), so resolve against both spellings.
  nn::NetSpec spec;
  bool net_ok = false;
  for (const char* cli : {"mlp", "lenet", "convnet", "alexnet", "vgg19"}) {
    nn::NetSpec s = analytic_net(cli);
    if (s.name == key.net || key.net == cli) {
      spec = std::move(s);
      net_ok = true;
      break;
    }
  }
  if (!net_ok) return "        unknown net '" + key.net + "'\n";

  std::size_t compute_layers = 0;
  for (const auto& a : nn::analyze(spec)) {
    if (a.is_compute()) ++compute_layers;
  }
  const tune::Candidate& cand = entry.candidate;
  if (!cand.layer_dims.empty() && cand.layer_dims.size() != compute_layers) {
    return "        " + std::to_string(cand.layer_dims.size()) +
           " layer dims for " + std::to_string(compute_layers) +
           " compute layers\n";
  }
  for (std::size_t i = 0; i < cand.layer_dims.size(); ++i) {
    if (!sched::dim_compatible(spec, i, cand.layer_dims[i])) {
      return "        dim '" +
             std::string(sched::to_string(cand.layer_dims[i])) +
             "' is illegal for compute layer " + std::to_string(i) + "\n";
    }
  }
  if (key.chips == 0 || key.cores % key.chips != 0) {
    return "        " + std::to_string(key.chips) +
           " chips cannot tile " + std::to_string(key.cores) + " cores\n";
  }
  // Placement permutes one chip's mesh (the whole machine on one chip).
  const std::size_t chip_cores = key.cores / key.chips;
  if (!cand.placement.empty()) {
    if (cand.placement.size() != chip_cores) {
      return "        placement maps " +
             std::to_string(cand.placement.size()) + " partitions on a " +
             std::to_string(chip_cores) + "-core chip\n";
    }
    std::vector<bool> seen(chip_cores, false);
    for (const std::size_t c : cand.placement) {
      if (c >= chip_cores || seen[c]) {
        return "        placement is not a permutation of the core range\n";
      }
      seen[c] = true;
    }
  }

  sim::SystemConfig cfg;
  cfg.cores = key.cores;
  cfg.chips = key.chips;
  cfg.noc = key.noc;
  cfg.noc_clock_divider = key.noc_clock_divider;
  sched::VerifyReport report;
  try {
    // Traffic rides each chip's own mesh (== the whole machine when the
    // key has one chip).
    const noc::MeshTopology topo = noc::MeshTopology::for_cores(chip_cores);
    const auto traffic = core::traffic_dense(spec, topo, cfg.bytes_per_value);
    const sched::Schedule schedule =
        tune::lower_candidate(spec, traffic, cfg, cand, key.strategy);
    sched::VerifyOptions vopts;
    vopts.accel = cfg.accel;
    vopts.accel.dram_bytes_per_cycle =
        cfg.chip_dram_bytes_per_cycle / static_cast<double>(chip_cores);
    vopts.noc = key.noc;
    report = sched::verify(schedule, vopts);
  } catch (const std::exception& e) {
    return "        lowering failed: " + std::string(e.what()) + "\n";
  }
  std::string out;
  for (const sched::Violation& v : report.violations) {
    out += "        ";
    out += v.event == sched::kNoEvent
               ? "schedule ["
               : "event " + std::to_string(v.event) + " [";
    out += sched::to_string(v.code);
    out += "]: " + v.message + "\n";
  }
  return out;
}

/// `ls_experiment verify`: static audit of an entire tuned-schedule cache
/// file. Exits nonzero on any violation, so a stale or hand-edited cache
/// fails tier-1 instead of feeding the executor garbage at serving time.
int cmd_verify(const Args& args) {
  const std::string path = tuned_cache_path(args);
  tune::ScheduleCache cache;
  std::string error;
  if (!cache.load_file(path, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  if (cache.entries().empty()) {
    std::printf("verify: %s has no entries — nothing to audit\n",
                path.c_str());
    return 0;
  }

  std::size_t failures = 0;
  for (const auto& [key_string, entry] : cache.entries()) {
    const std::string fail = audit_entry(key_string, entry);
    if (fail.empty()) {
      std::printf("  ok    %s\n", key_string.c_str());
    } else {
      ++failures;
      std::printf("  FAIL  %s\n%s", key_string.c_str(), fail.c_str());
    }
  }
  std::printf("verify: %zu/%zu entries ok in %s\n",
              cache.entries().size() - failures, cache.entries().size(),
              path.c_str());
  return failures == 0 ? 0 : 1;
}

int cmd_profile(const Args& args) {
  const nn::NetSpec spec = analytic_net(args.str("net", "convnet"));
  sim::SystemConfig cfg;
  apply_system_args(args, &cfg);
  const auto requests = static_cast<std::size_t>(args.num("requests", 8));
  const sim::CmpSystem system(cfg);
  const auto traffic =
      core::traffic_dense(spec, system.topology(), cfg.bytes_per_value);
  const sched::Schedule schedule =
      schedule_for_run(args, spec, cfg, system, traffic);

  // Executed stream + its timeline (the attribution substrate). The
  // embedded single_pass is bit-identical to execute() on this schedule.
  sim::StreamTimeline timeline;
  const sim::StreamResult s =
      system.run_stream(schedule, requests, 0, &timeline);

  const prof::ModelErrorReport model_error = prof::compare_model(
      schedule, tune::cost_model_for(cfg), s.single_pass);
  const prof::StreamAttribution attribution =
      prof::attribute_stream(schedule, timeline);
  const prof::StreamLatency latency =
      prof::stream_latency(schedule, timeline);

  // Tuner search telemetry: a small profiling search by default
  // (--tune-budget 0 skips it; it shares no state with the run above).
  tune::TuneOutcome tuned;
  tune::TuneTelemetry telemetry;
  const auto tune_budget =
      static_cast<std::uint64_t>(args.num("tune-budget", 400));
  if (tune_budget > 0) {
    tune::TunerConfig tcfg;
    tcfg.budget = tune_budget;
    tcfg.restarts = static_cast<std::size_t>(args.num("restarts", 4));
    tcfg.top_k = static_cast<std::size_t>(args.num("top-k", 3));
    tcfg.seed = static_cast<std::uint64_t>(args.num("seed", 0x4c535343));
    tuned = tune::tune(spec, traffic, cfg, tcfg,
                       sched::Strategy::kTraditional, &telemetry);
  }

  prof::ProfileInputs inputs;
  inputs.net_name = spec.name;
  inputs.cores = cfg.cores;
  inputs.requests = requests;
  inputs.single_pass = &s.single_pass;
  inputs.model_error = &model_error;
  inputs.stream = &attribution;
  inputs.latency = &latency;
  if (tune_budget > 0) {
    inputs.tune_outcome = &tuned;
    inputs.tune_telemetry = &telemetry;
  }
  const std::string json = prof::build_profile_json(inputs);

  const std::string out_path = args.str("out", "profile.json");
  {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot open %s for writing\n",
                   out_path.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }
  // The report must round-trip through the repo's own parser — a profile
  // nothing can read is worse than none.
  util::JsonValue parsed;
  std::string error;
  if (!util::parse_json_file(out_path, &parsed, &error)) {
    std::fprintf(stderr, "error: %s does not parse back: %s\n",
                 out_path.c_str(), error.c_str());
    return 1;
  }

  const prof::BlameBreakdown& blame = attribution.blame;
  util::Table t(spec.name + " profile: " + std::to_string(requests) +
                " requests on " + system_desc(cfg));
  t.set_header({"metric", "value"});
  const auto cyc = [](std::uint64_t v) { return std::to_string(v) + " cyc"; };
  const auto pct = [&](std::uint64_t v) {
    return util::fmt_percent(
        attribution.makespan_cycles
            ? static_cast<double>(v) /
                  static_cast<double>(attribution.makespan_cycles)
            : 0.0);
  };
  t.add_row({"stream makespan", cyc(attribution.makespan_cycles)});
  t.add_row({"blame: compute", cyc(blame.compute_cycles) + " (" +
                                   pct(blame.compute_cycles) + ")"});
  t.add_row({"blame: NoC contention",
             cyc(blame.noc_cycles) + " (" + pct(blame.noc_cycles) + ")"});
  if (cfg.chips > 1) {
    t.add_row({"blame: inter-chip link", cyc(blame.inter_chip_cycles) + " (" +
                                             pct(blame.inter_chip_cycles) +
                                             ")"});
    t.add_row({"blame: dep stall on inter-chip",
               cyc(blame.dep_stall_on_inter_chip_cycles) + " (" +
                   pct(blame.dep_stall_on_inter_chip_cycles) + ")"});
  }
  t.add_row({"blame: dep stall on comm",
             cyc(blame.dep_stall_on_comm_cycles) + " (" +
                 pct(blame.dep_stall_on_comm_cycles) + ")"});
  t.add_row({"blame: dep stall on compute",
             cyc(blame.dep_stall_on_compute_cycles) + " (" +
                 pct(blame.dep_stall_on_compute_cycles) + ")"});
  t.add_row({"latency p50 / p95 / p99",
             util::fmt_double(latency.p50_cycles, 0) + " / " +
                 util::fmt_double(latency.p95_cycles, 0) + " / " +
                 util::fmt_double(latency.p99_cycles, 0) + " cyc"});
  t.add_row({"model comm err (mean signed)",
             util::fmt_percent(model_error.comm_rel_error.mean())});
  t.print();

  util::Table lt("per-layer cost-model error (" + spec.name + ")");
  lt.set_header({"layer", "est-comm", "act-comm", "comm-err", "compute-err"});
  for (const auto& e : model_error.layers) {
    lt.add_row({e.layer_name, std::to_string(e.est_comm_cycles),
                std::to_string(e.act_comm_cycles),
                util::fmt_percent(e.comm_rel_error),
                util::fmt_percent(e.compute_rel_error)});
  }
  lt.print();
  std::printf("profile written to %s (%zu bytes, parses back OK)\n",
              out_path.c_str(), json.size());
  return 0;
}

void usage() {
  std::puts(
      "usage: ls_experiment <command> [--key value ...]\n"
      "  sparsified --net mlp|lenet|convnet|caffenet --cores N --lambda X\n"
      "             [--epochs N] [--samples N] [--seed N] [--exponent X]\n"
      "             [--block] [--verbose]\n"
      "  structure  --c1 N --c2 N --c3 N --groups N --cores N\n"
      "  traffic    --net mlp|lenet|convnet|alexnet|vgg19 --cores N\n"
      "  pipeline   --net mlp|lenet|convnet|alexnet|vgg19 --cores N\n"
      "  infer      --net mlp|lenet|convnet|alexnet|vgg19 --cores N\n"
      "             [--chips C] [--overlap] [--no-cache]\n"
      "             [--schedule-dump out.json]\n"
      "             [--tuned-cache store.json] [--no-tuned]\n"
      "  stream     --net mlp|lenet|convnet|alexnet|vgg19 --cores N\n"
      "             [--chips C] [--requests N] [--no-cache]\n"
      "             [--tuned-cache store.json] [--no-tuned]\n"
      "  tune       --net mlp|lenet|convnet|alexnet|vgg19 --cores N\n"
      "             [--chips C] [--budget N] [--restarts N] [--top-k N]\n"
      "             [--seed N] [--overlap] [--tuned-cache store.json]\n"
      "  profile    --net mlp|lenet|convnet|alexnet|vgg19 --cores N\n"
      "             [--chips C] [--requests N] [--out profile.json]\n"
      "             [--tune-budget N] [--no-cache]\n"
      "             [--tuned-cache store.json] [--no-tuned]\n"
      "  (--chips C pipelines stages across C chips; C must divide the\n"
      "   core count)\n"
      "  verify     [--tuned-cache store.json]\n"
      "             statically audit every cached tuned schedule; exits\n"
      "             nonzero on any violation\n"
      "global observability flags (any command):\n"
      "  --trace out.json    write a Perfetto/chrome-trace timeline\n"
      "  --metrics out.json  dump the metrics registry (counters, heatmap)\n"
      "  (or set LS_TRACE / LS_METRICS in the environment)");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  const Args args = parse(argc, argv, 2);
  ls::obs::init_from_env();  // LS_TRACE / LS_METRICS
  const std::string trace_path = args.str("trace", "");
  const std::string metrics_path = args.str("metrics", "");
  if (!trace_path.empty()) ls::obs::Tracer::instance().start(trace_path);
  if (!metrics_path.empty()) {
    ls::obs::Registry::instance().set_output(metrics_path);
  }
  int rc = 2;
  try {
    if (cmd == "sparsified") {
      rc = cmd_sparsified(args);
    } else if (cmd == "structure") {
      rc = cmd_structure(args);
    } else if (cmd == "traffic") {
      rc = cmd_traffic(args);
    } else if (cmd == "pipeline") {
      rc = cmd_pipeline(args);
    } else if (cmd == "infer") {
      rc = cmd_infer(args);
    } else if (cmd == "stream") {
      rc = cmd_stream(args);
    } else if (cmd == "tune") {
      rc = cmd_tune(args);
    } else if (cmd == "profile") {
      rc = cmd_profile(args);
    } else if (cmd == "verify") {
      rc = cmd_verify(args);
    } else {
      usage();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }
  // Flush observers explicitly so outputs exist even though the atexit
  // fallback (from init_from_env) would also write them.
  ls::obs::Tracer::instance().finish();
  ls::obs::Registry::instance().finish();
  return rc;
}
