#!/usr/bin/env bash
# Tier-1 wrapper: configure (Release), build, run the full test suite, then
# the conv-kernel microbenchmark with a JSON dump. Usage:
#   tools/run_tier1.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"$repo_root/build"}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -S "$repo_root" -B "$build_dir" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j "$jobs"
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"

"$build_dir/bench/bench_kernel_micro" --json "$repo_root/BENCH_kernels.json" \
  --sparse-json "$repo_root/BENCH_sparse.json"

# Sparse bench smoke: the block-sparse dump must exist and contain the
# swept sparsity levels.
[ -s "$repo_root/BENCH_sparse.json" ] || {
  echo "sparse bench: missing BENCH_sparse.json" >&2; exit 1; }
grep -q '"kernel_sparse"' "$repo_root/BENCH_sparse.json"
grep -q '"sparsity_pct":75' "$repo_root/BENCH_sparse.json"

# Observability smoke: an AlexNet 16-core inference must produce a valid
# Perfetto trace and metrics dump (validated with python3 when available).
obs_dir="$build_dir/obs_smoke"
mkdir -p "$obs_dir"
"$build_dir/tools/ls_experiment" infer --net alexnet --cores 16 \
  --trace "$obs_dir/trace.json" --metrics "$obs_dir/metrics.json" >/dev/null
for f in "$obs_dir/trace.json" "$obs_dir/metrics.json"; do
  [ -s "$f" ] || { echo "obs smoke: missing $f" >&2; exit 1; }
  if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$f" >/dev/null
  fi
done
grep -q '"traceEvents"' "$obs_dir/trace.json"
grep -q '"noc_link_heatmap"' "$obs_dir/metrics.json"

echo "tier1 OK — kernel bench results in BENCH_kernels.json, obs smoke in $obs_dir"
