#!/usr/bin/env bash
# Tier-1 wrapper: configure (Release), build, run the full test suite, then
# the conv-kernel microbenchmark with a JSON dump. Usage:
#   tools/run_tier1.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"$repo_root/build"}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -S "$repo_root" -B "$build_dir" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j "$jobs"
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"

"$build_dir/bench/bench_kernel_micro" --json "$repo_root/BENCH_kernels.json"
echo "tier1 OK — kernel bench results in BENCH_kernels.json"
