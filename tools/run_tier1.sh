#!/usr/bin/env bash
# Tier-1 wrapper: configure (Release), build, run the full test suite, then
# the conv-kernel microbenchmark with a JSON dump. Usage:
#   tools/run_tier1.sh [build-dir]
#
# Environment passthrough (DESIGN.md "Correctness tooling"):
#   LS_SAN=address,undefined|thread  build sanitized (implies LS_CHECKS=ON);
#                                    benches and the obs smoke are skipped —
#                                    sanitized timings are meaningless and
#                                    the jobs exist to find bugs, not numbers.
#   LS_CHECKS=ON                     checked build without sanitizers (the
#                                    invariant layer on, benches still run).
#   LS_TEST_LABEL=<label>            restrict ctest to one label (the TSan
#                                    CI job runs the `stress` subset).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"$repo_root/build"}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake_args=(-DCMAKE_BUILD_TYPE=Release)
sanitized=0
if [ -n "${LS_SAN:-}" ]; then
  cmake_args=(-DCMAKE_BUILD_TYPE=RelWithDebInfo "-DLS_SAN=$LS_SAN")
  sanitized=1
fi
if [ "${LS_CHECKS:-}" = "ON" ] || [ "${LS_CHECKS:-}" = "1" ]; then
  cmake_args+=(-DLS_CHECKS=ON)
fi

cmake -S "$repo_root" -B "$build_dir" "${cmake_args[@]}"
cmake --build "$build_dir" -j "$jobs"

ctest_args=(--output-on-failure -j "$jobs")
if [ -n "${LS_TEST_LABEL:-}" ]; then
  ctest_args+=(-L "$LS_TEST_LABEL")
fi
ctest --test-dir "$build_dir" "${ctest_args[@]}"

if [ "$sanitized" -eq 1 ]; then
  echo "tier1 OK (sanitized: LS_SAN=$LS_SAN) — benches/obs smoke skipped"
  exit 0
fi

# Snapshot the committed bench results before the benches overwrite them:
# they are this run's regression baseline for the bench_diff soft gate.
baseline_dir="$build_dir/bench_baseline"
mkdir -p "$baseline_dir"
for f in BENCH_kernels.json BENCH_stream.json BENCH_tune.json \
         BENCH_multichip.json; do
  [ -s "$repo_root/$f" ] && cp "$repo_root/$f" "$baseline_dir/$f"
done

"$build_dir/bench/bench_kernel_micro" --json "$repo_root/BENCH_kernels.json" \
  --sparse-json "$repo_root/BENCH_sparse.json"

# Vectorized-backend hard gate (ISSUE 8): where the AVX2+FMA clones run,
# the direct single-thread GEMM must beat the scalar kernel by >=2x in
# geomean over the ConvNet/CaffeNet conv shapes, with a 1.6x per-layer
# floor (per-layer numbers sit near 2x and jitter ~10% on shared runners).
# The 0%-sparsity simd rows double as the sparse-dispatch overhead probe:
# arming the mask machinery on dense weights must stay within noise.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$repo_root/BENCH_kernels.json" "$repo_root/BENCH_sparse.json" <<'PYEOF'
import json, math, sys
kern = json.load(open(sys.argv[1]))
if not (kern.get("simd_available") and kern.get("simd_isa") == "avx2+fma"):
    print("simd gate: skipped (isa=%s)" % kern.get("simd_isa"))
    sys.exit(0)
fails = []
speedups = []
for c in kern["cases"]:
    if c["net"] not in ("ConvNet", "CaffeNet"):
        continue
    s = c["mm_simd_speedup"]
    speedups.append(s)
    if s < 1.6:
        fails.append("%s.%s mm_simd_speedup %.2f < 1.6" %
                     (c["net"], c["layer"], s))
if not speedups:
    print("simd gate FAILED:\n  no ConvNet/CaffeNet conv shapes in %s"
          % sys.argv[1], file=sys.stderr)
    sys.exit(1)
geomean = math.exp(sum(map(math.log, speedups)) / len(speedups))
if geomean < 2.0:
    fails.append("geomean mm_simd_speedup %.2f < 2.0" % geomean)
for c in json.load(open(sys.argv[2]))["cases"]:
    if c["impl"] == "simd" and c["sparsity_pct"] == 0 and c["speedup"] < 0.85:
        fails.append("sparse %s impl=simd 0%% overhead: speedup %.2f < 0.85" %
                     (c["kind"], c["speedup"]))
if fails:
    print("simd gate FAILED:\n  " + "\n  ".join(fails), file=sys.stderr)
    sys.exit(1)
print("simd gate OK: geomean mm speedup %.2fx over %d conv shapes" %
      (geomean, len(speedups)))
PYEOF
fi

# Streaming engine bench (model cycles, deterministic): BENCH_stream.json
# must show the software pipeline beating back-to-back execution on the
# headline 16-core ConvNet config.
"$build_dir/bench/bench_stream_throughput" --requests 16 \
  --json "$repo_root/BENCH_stream.json"
[ -s "$repo_root/BENCH_stream.json" ] || {
  echo "stream bench: missing BENCH_stream.json" >&2; exit 1; }
grep -q '"stream_throughput"' "$repo_root/BENCH_stream.json"
grep -q '"speedup_vs_back_to_back"' "$repo_root/BENCH_stream.json"

# Sparse bench smoke: the block-sparse dump must exist and contain the
# swept sparsity levels.
[ -s "$repo_root/BENCH_sparse.json" ] || {
  echo "sparse bench: missing BENCH_sparse.json" >&2; exit 1; }
grep -q '"kernel_sparse"' "$repo_root/BENCH_sparse.json"
grep -q '"sparsity_pct":75' "$repo_root/BENCH_sparse.json"

# Autotuner bench (analytic cycles, deterministic; winners flit-validated):
# BENCH_tune.json must show tuned schedules beating the kernel-wise baseline
# on ConvNet and AlexNet at 16 and 64 cores.
"$build_dir/bench/bench_tune" --budget 2000 \
  --json "$repo_root/BENCH_tune.json"
[ -s "$repo_root/BENCH_tune.json" ] || {
  echo "tune bench: missing BENCH_tune.json" >&2; exit 1; }
grep -q '"bench":"tune"' "$repo_root/BENCH_tune.json"
grep -q '"speedup_sim"' "$repo_root/BENCH_tune.json"
if grep -q '"speedup_sim":0\.' "$repo_root/BENCH_tune.json"; then
  echo "tune bench: a tuned schedule regressed below the baseline" >&2
  exit 1
fi

# Multi-chip scale-out bench (model cycles, deterministic): at the
# embedded-NoC operating point, pipelining ConvNet stages across 4 x 16-core
# chips must beat one flat 64-core mesh by >= 1.3x — the ISSUE 10
# acceptance gate, read from the json so the table and the gate cannot
# diverge.
"$build_dir/bench/bench_multichip" --requests 32 \
  --json "$repo_root/BENCH_multichip.json"
[ -s "$repo_root/BENCH_multichip.json" ] || {
  echo "multichip bench: missing BENCH_multichip.json" >&2; exit 1; }
grep -q '"bench":"multichip"' "$repo_root/BENCH_multichip.json"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$repo_root/BENCH_multichip.json" <<'PYEOF'
import json, sys
rows = json.load(open(sys.argv[1]))["rows"]
row = [r for r in rows if r["net"] == "ConvNet" and r["chips"] == 4]
if not row:
    print("multichip gate FAILED: no ConvNet 4-chip row", file=sys.stderr)
    sys.exit(1)
s = row[0]["speedup_vs_one_chip"]
if s < 1.3:
    print("multichip gate FAILED: ConvNet 4x16 speedup %.2fx < 1.3x vs one "
          "64-core mesh" % s, file=sys.stderr)
    sys.exit(1)
print("multichip gate OK: ConvNet 4x16 streaming %.2fx vs one 64-core mesh"
      % s)
PYEOF
fi

# Tune smoke: a bounded search on the small net must populate the schedule
# cache, and a follow-up inference must pick the tuned schedule up.
tune_dir="$build_dir/tune_smoke"
mkdir -p "$tune_dir"
"$build_dir/tools/ls_experiment" tune --net convnet --cores 16 \
  --budget 200 --restarts 2 --seed 7 \
  --tuned-cache "$tune_dir/tuned_schedules.json" >/dev/null
[ -s "$tune_dir/tuned_schedules.json" ] || {
  echo "tune smoke: missing schedule cache" >&2; exit 1; }
"$build_dir/tools/ls_experiment" infer --net convnet --cores 16 \
  --tuned-cache "$tune_dir/tuned_schedules.json" \
  | grep -q 'using tuned schedule' || {
  echo "tune smoke: infer did not pick up the tuned schedule" >&2; exit 1; }

# Verify smoke: the static schedule verifier must audit the cache the tune
# smoke just produced — and the committed store, when present — clean.
"$build_dir/tools/ls_experiment" verify \
  --tuned-cache "$tune_dir/tuned_schedules.json" || {
  echo "verify smoke: tune-smoke cache failed static verification" >&2
  exit 1; }
if [ -s "$repo_root/tuned_schedules.json" ]; then
  "$build_dir/tools/ls_experiment" verify \
    --tuned-cache "$repo_root/tuned_schedules.json" || {
    echo "verify smoke: committed cache failed static verification" >&2
    exit 1; }
fi

# Bench regression soft gate: diff the fresh dumps against the committed
# baselines snapshotted above. Timing-sensitive metrics (wall-clock ms)
# vary across runners, so a regression here warns loudly but does not
# fail tier-1 — the hard gates above (speedup > 1, structure greps) still
# do. Structure mismatches (renamed/missing metrics) also surface here.
for f in BENCH_kernels.json BENCH_stream.json BENCH_tune.json \
         BENCH_multichip.json; do
  [ -s "$baseline_dir/$f" ] || continue
  if ! "$build_dir/tools/bench_diff" "$baseline_dir/$f" "$repo_root/$f" \
      --threshold 0.25; then
    echo "bench_diff: WARNING — $f drifted beyond threshold vs committed baseline" >&2
  fi
done

# Profiler smoke (`ls_experiment profile`): the paper's headline nets at
# both mesh sizes must produce a profile.json that parses back through
# util::parse_json (the CLI re-parses its own output and fails if it
# cannot). Blame-decomposition invariants are LS_CHECK-enforced inside.
profile_dir="$build_dir/profile"
mkdir -p "$profile_dir"
for net in convnet alexnet; do
  for cores in 16 64; do
    out="$profile_dir/profile_${net}_${cores}.json"
    "$build_dir/tools/ls_experiment" profile --net "$net" --cores "$cores" \
      --requests 8 --tune-budget 0 --no-tuned --out "$out" >/dev/null
    [ -s "$out" ] || { echo "profile smoke: missing $out" >&2; exit 1; }
    if command -v python3 >/dev/null 2>&1; then
      python3 -m json.tool "$out" >/dev/null
    fi
  done
done
grep -q '"blame"' "$profile_dir/profile_convnet_16.json"
grep -q '"model_error"' "$profile_dir/profile_alexnet_64.json"

# The blame decomposition is cycle-domain: wall-clock kernels never feed
# the cost model, so swapping the GEMM backend must not move a single
# byte of the profile (the compute tripwire would fire inside otherwise).
LS_CONV_IMPL=simd "$build_dir/tools/ls_experiment" profile --net convnet \
  --cores 16 --requests 8 --tune-budget 0 --no-tuned \
  --out "$profile_dir/profile_convnet_16_simd.json" >/dev/null
cmp "$profile_dir/profile_convnet_16.json" \
    "$profile_dir/profile_convnet_16_simd.json" || {
  echo "profile smoke: simd backend changed the cycle-domain profile" >&2
  exit 1; }

# Observability smoke: an AlexNet 16-core inference must produce a valid
# Perfetto trace and metrics dump (validated with python3 when available).
obs_dir="$build_dir/obs_smoke"
mkdir -p "$obs_dir"
"$build_dir/tools/ls_experiment" infer --net alexnet --cores 16 \
  --trace "$obs_dir/trace.json" --metrics "$obs_dir/metrics.json" >/dev/null
for f in "$obs_dir/trace.json" "$obs_dir/metrics.json"; do
  [ -s "$f" ] || { echo "obs smoke: missing $f" >&2; exit 1; }
  if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$f" >/dev/null
  fi
done
grep -q '"traceEvents"' "$obs_dir/trace.json"
grep -q '"noc_link_heatmap"' "$obs_dir/metrics.json"

echo "tier1 OK — bench results in BENCH_kernels.json / BENCH_stream.json / BENCH_tune.json / BENCH_multichip.json, obs smoke in $obs_dir, profiles in $profile_dir"
