// Scratch harness: sweep group-Lasso strength and report accuracy /
// traffic / dead-block fraction for one network. Not a deliverable.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "nn/model_zoo.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace ls;
  const double lambda = argc > 1 ? std::atof(argv[1]) : 0.1;
  const char* which = argc > 2 ? argv[2] : "mlp";
  const int epochs = argc > 3 ? std::atoi(argv[3]) : 3;

  nn::NetSpec spec = std::string(which) == "lenet"   ? nn::lenet_expt_spec()
                     : std::string(which) == "convnet" ? nn::convnet_expt_spec()
                     : std::string(which) == "caffenet"
                         ? nn::caffenet_expt_spec()
                         : nn::mlp_expt_spec();
  const data::Dataset train_set = sim::dataset_for(spec, 768, 1);
  const data::Dataset test_set = sim::dataset_for(spec, 256, 2);

  sim::ExperimentConfig cfg;
  cfg.cores = 16;
  cfg.train.epochs = static_cast<std::size_t>(epochs);
  cfg.lambda_ss = lambda;
  cfg.lambda_mask = lambda;
  const auto outcomes =
      sim::run_sparsified_experiment(spec, train_set, test_set, cfg);
  for (const auto& o : outcomes) {
    std::printf(
        "%-9s acc=%.3f traffic=%.3f speedup=%.2f commE-=%.2f dead=%.2f "
        "sparsity=%.2f cyc=%llu (cmp=%llu comm=%llu)\n",
        o.scheme.c_str(), o.accuracy, o.traffic_rate, o.speedup,
        o.comm_energy_reduction, o.dead_block_fraction, o.weight_sparsity,
        static_cast<unsigned long long>(o.result.total_cycles),
        static_cast<unsigned long long>(o.result.compute_cycles),
        static_cast<unsigned long long>(o.result.comm_cycles));
  }
  return 0;
}
