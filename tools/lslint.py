#!/usr/bin/env python3
"""lslint: project-rule linter for invariants clang-tidy cannot express.

Scans C++ sources for repo-specific contracts (DESIGN.md "Static
analysis"): allocation discipline in hot paths, hash-order determinism,
and LS_CHECK diagnostic conventions. Violations print as

    file:line: rule-id: message

and the process exits 1. Run `tools/lslint.py --explain <rule-id>` for the
rationale behind a rule, `--self-test` to prove every rule still fires on
a seeded fixture, and add `path-substring rule-id` lines to
tools/lslint.supp to suppress a known-good site.

Stdlib only; comments, string and char literals are blanked (with line
structure preserved) before any rule pattern runs, so prose mentioning a
banned construct never trips a rule.
"""

import argparse
import os
import re
import signal
import sys
import tempfile

RULES = {
    "alloc-in-parallel-for": (
        "allocation or std::vector growth inside a parallel_for body",
        "parallel_for bodies run on pool threads in the inference hot\n"
        "path. Allocation there serializes on the heap lock, and vector\n"
        "growth reallocates behind pointers other iterations may hold.\n"
        "Hoist buffers out of the lambda or use the scratch arena\n"
        "(nn/scratch.hpp), which hands out thread-local reusable blocks.",
    ),
    "raw-alloc-in-kernel": (
        "naked new/malloc in a GEMM/scratch hot-path file",
        "The GEMM kernels and the scratch arena are the innermost\n"
        "compute loops; PR 8's scratch-arena contract is that steady-state\n"
        "calls never touch the allocator (asserted by\n"
        "ScratchArena.SimdGemmSteadyStateDoesNotReallocate). All buffers\n"
        "come from nn::scratch or are std containers sized once outside\n"
        "the kernel.",
    ),
    "unordered-iteration": (
        "range-for over a std::unordered_map/unordered_set",
        "Hash-order iteration feeding a reduction, a JSON dump, or a\n"
        "cache file breaks the repo's byte-identical determinism\n"
        "guarantees (canonical schedule caches, bit-stable profiles).\n"
        "Iterate a std::map/std::set, or sort before consuming. Lookups\n"
        "into unordered containers are fine — only iteration is flagged.",
    ),
    "check-needs-message": (
        "message-less LS_CHECK( in src/sched, src/noc, or src/tune",
        "Schedule, NoC, and tuner invariants fire on data (schedules,\n"
        "caches, traffic, tuned-store files — the multi-chip hierarchy\n"
        "added chip/stage constraints to all three), not just code bugs;\n"
        "a bare LS_CHECK abort with no diagnostic is undebuggable from a\n"
        "CI log. Use LS_CHECK_MSG with the violated quantity.",
    ),
    "check-include-hygiene": (
        "uses LS_CHECK*/check::kEnabled without including check/check.hpp",
        "The check macros compile to nothing in unchecked builds; a file\n"
        "picking them up transitively can silently lose its asserts when\n"
        "an unrelated include is cleaned up. Include check/check.hpp\n"
        "directly wherever the macros or check::kEnabled appear.",
    ),
}

# Files whose inner loops are the raw-alloc-in-kernel surface.
KERNEL_FILES = ("nn/gemm.cpp", "nn/gemm_simd.cpp", "nn/scratch.cpp",
                "nn/scratch.hpp")

ALLOC_BAN = re.compile(
    r"\bnew\s|\bmalloc\s*\(|\.push_back\s*\(|\.emplace_back\s*\(|"
    r"\.resize\s*\(|\.reserve\s*\(|std::vector<")
RAW_ALLOC = re.compile(r"\bnew\s|\bmalloc\s*\(")
UNORDERED_DECL = re.compile(
    r"std::unordered_(?:map|set)<[^;{()]*?>\s*&?\s*(\w+)\s*[;={(,]")
RANGE_FOR = re.compile(r"for\s*\([^;)]*:\s*(\w+)\s*\)")
PLAIN_CHECK = re.compile(r"(?<![A-Z_])LS_CHECK\s*\(")
CHECK_USE = re.compile(r"(?<![A-Z_])LS_CHECK(?:_MSG)?\s*\(|check::kEnabled")
CHECK_INCLUDE = re.compile(r'#\s*include\s*"check/check\.hpp"')


def blank_comments_and_strings(text):
    """Returns text with comments and string/char literals replaced by
    spaces, newlines preserved — so offsets and line numbers still map."""
    out = []
    i, n = 0, len(text)
    mode = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode, i = "line", i + 2
                out.append("  ")
            elif c == "/" and nxt == "*":
                mode, i = "block", i + 2
                out.append("  ")
            elif c == '"':
                mode, i = "str", i + 1
                out.append(" ")
            elif c == "'":
                mode, i = "chr", i + 1
                out.append(" ")
            else:
                out.append(c)
                i += 1
        elif mode == "line":
            out.append("\n" if c == "\n" else " ")
            if c == "\n":
                mode = "code"
            i += 1
        elif mode == "block":
            if c == "*" and nxt == "/":
                mode, i = "code", i + 2
                out.append("  ")
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        else:  # str / chr
            quote = '"' if mode == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                mode, i = "code", i + 1
                out.append(" ")
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def call_span(text, open_paren):
    """Returns the end offset of the call whose '(' sits at open_paren."""
    depth, j = 1, open_paren + 1
    while j < len(text) and depth:
        if text[j] == "(":
            depth += 1
        elif text[j] == ")":
            depth -= 1
        j += 1
    return j


def check_alloc_in_parallel_for(path, text, raw, report):
    for m in re.finditer(r"parallel_for\s*\(", text):
        end = call_span(text, m.end() - 1)
        body = text[m.start():end]
        if "[" not in body:  # named callable, not an inline lambda
            continue
        hit = ALLOC_BAN.search(body)
        if hit:
            report(path, line_of(text, m.start() + hit.start()),
                   "alloc-in-parallel-for",
                   "'%s' inside a parallel_for body — hoist the buffer or "
                   "use the scratch arena" % hit.group().strip())


def check_raw_alloc_in_kernel(path, text, raw, report):
    norm = path.replace(os.sep, "/")
    if not norm.endswith(KERNEL_FILES):
        return
    for hit in RAW_ALLOC.finditer(text):
        report(path, line_of(text, hit.start()), "raw-alloc-in-kernel",
               "'%s' in a GEMM/scratch hot-path file" % hit.group().strip())


def check_unordered_iteration(path, text, raw, report):
    names = {m.group(1) for m in UNORDERED_DECL.finditer(text)}
    if not names:
        return
    for m in RANGE_FOR.finditer(text):
        if m.group(1) in names:
            report(path, line_of(text, m.start()), "unordered-iteration",
                   "range-for over unordered container '%s' — hash order "
                   "is nondeterministic" % m.group(1))


def check_needs_message(path, text, raw, report):
    norm = path.replace(os.sep, "/")
    if ("src/sched/" not in norm and "src/noc/" not in norm
            and "src/tune/" not in norm):
        return
    for hit in PLAIN_CHECK.finditer(text):
        report(path, line_of(text, hit.start()), "check-needs-message",
               "message-less LS_CHECK in sched/noc/tune — use LS_CHECK_MSG "
               "with the violated quantity")


def check_include_hygiene(path, text, raw, report):
    norm = path.replace(os.sep, "/")
    if norm.endswith("check/check.hpp"):
        return
    # The include path lives in a string literal, so it is matched against
    # the raw text; macro uses are matched against the blanked text so a
    # comment mentioning LS_CHECK never arms the rule.
    hit = CHECK_USE.search(text)
    if hit and not CHECK_INCLUDE.search(raw):
        report(path, line_of(text, hit.start()), "check-include-hygiene",
               "uses the check macros without including check/check.hpp")


CHECKS = (
    check_alloc_in_parallel_for,
    check_raw_alloc_in_kernel,
    check_unordered_iteration,
    check_needs_message,
    check_include_hygiene,
)


def load_suppressions(repo_root):
    """tools/lslint.supp: one `path-substring rule-id` pair per line
    (# comments and blanks ignored)."""
    supp = []
    path = os.path.join(repo_root, "tools", "lslint.supp")
    if not os.path.exists(path):
        return supp
    with open(path, encoding="utf-8") as f:
        for raw in f:
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 2 or parts[1] not in RULES:
                print("lslint: malformed suppression: %s" % raw.strip(),
                      file=sys.stderr)
                sys.exit(2)
            supp.append((parts[0], parts[1]))
    return supp


def scan_files(paths, suppressions):
    violations = []

    def report(path, line, rule, message):
        norm = path.replace(os.sep, "/")
        for sub, srule in suppressions:
            if sub in norm and srule == rule:
                return
        violations.append((path, line, rule, message))

    for path in paths:
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        text = blank_comments_and_strings(raw)
        for check in CHECKS:
            check(path, text, raw, report)
    return violations


def source_files(root):
    for dirpath, _, files in os.walk(root):
        for name in sorted(files):
            if name.endswith((".cpp", ".hpp")):
                yield os.path.join(dirpath, name)


FIXTURES = {
    "alloc-in-parallel-for": """
#include "check/check.hpp"
#include "util/parallel.hpp"
void f(std::vector<float>& out) {
  util::parallel_for(0, 8, [&](std::size_t i) {
    out.push_back(static_cast<float>(i));  // grows under the pool
  });
}
""",
    "raw-alloc-in-kernel": """
#include "check/check.hpp"
void gemm_inner() {
  float* buf = new float[64];
  delete[] buf;
}
""",
    "unordered-iteration": """
#include <unordered_map>
#include "check/check.hpp"
int sum() {
  std::unordered_map<int, int> acc;
  int total = 0;
  for (const auto& kv : acc) total += kv.second;
  return total;
}
""",
    "check-needs-message": """
#include "check/check.hpp"
void g(int x) { LS_CHECK(x > 0); }
""",
    "check-include-hygiene": """
void h(int x) { LS_CHECK_MSG(x > 0, "x=%d", x); }
""",
}

CLEAN_FIXTURE = """
#include <map>
#include <vector>
#include "check/check.hpp"
#include "util/parallel.hpp"
// A comment saying malloc( and new  and .push_back( must not trip rules.
int ok(std::vector<float>& out) {
  out.reserve(8);  // growth outside the parallel body is fine
  util::parallel_for(0, 8, [&](std::size_t i) { out[i] = 1.0f; });
  std::map<int, int> acc;
  int total = 0;
  for (const auto& kv : acc) total += kv.second;
  LS_CHECK_MSG(total == 0, "total=%d", total);
  return total;
}
"""


def self_test():
    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        for rule, body in FIXTURES.items():
            # Placement decides which path-scoped rules arm: kernel-file
            # rules need a gemm path, message rules a sched path.
            rel = {
                "raw-alloc-in-kernel": "src/nn/gemm.cpp",
                "check-needs-message": "src/sched/fixture.cpp",
            }.get(rule, "src/sim/fixture.cpp")
            path = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(body)
            found = scan_files([path], [])
            if not any(v[2] == rule for v in found):
                print("self-test FAILED: %s did not fire on its fixture "
                      "(got %s)" % (rule, [v[2] for v in found]))
                failures += 1
            os.remove(path)
        clean = os.path.join(tmp, "src", "sim", "clean.cpp")
        os.makedirs(os.path.dirname(clean), exist_ok=True)
        with open(clean, "w", encoding="utf-8") as f:
            f.write(CLEAN_FIXTURE)
        noise = scan_files([clean], [])
        if noise:
            print("self-test FAILED: clean fixture tripped %s" %
                  [(v[2], v[1]) for v in noise])
            failures += 1
    if failures == 0:
        print("lslint self-test OK: %d rules fire, clean fixture passes" %
              len(FIXTURES))
    return 1 if failures else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*",
                    help="files or directories to scan (default: src/)")
    ap.add_argument("--explain", metavar="RULE-ID",
                    help="print the rationale for a rule and exit")
    ap.add_argument("--self-test", action="store_true",
                    help="verify every rule fires on a seeded fixture")
    args = ap.parse_args()

    if args.explain:
        if args.explain not in RULES:
            print("unknown rule '%s'; rules: %s" %
                  (args.explain, ", ".join(sorted(RULES))), file=sys.stderr)
            return 2
        summary, rationale = RULES[args.explain]
        print("%s: %s\n\n%s" % (args.explain, summary, rationale))
        return 0

    if args.self_test:
        return self_test()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    targets = args.paths or [os.path.join(repo_root, "src")]
    files = []
    for t in targets:
        if os.path.isdir(t):
            files.extend(source_files(t))
        else:
            files.append(t)

    violations = scan_files(files, load_suppressions(repo_root))
    for path, line, rule, message in sorted(violations):
        rel = os.path.relpath(path, repo_root)
        print("%s:%d: %s: %s" % (rel, line, rule, message))
    if violations:
        print("lslint: %d violation(s)" % len(violations), file=sys.stderr)
        return 1
    print("lslint: %d files clean" % len(files))
    return 0


if __name__ == "__main__":
    if hasattr(signal, "SIGPIPE"):  # die quietly when piped into head(1)
        signal.signal(signal.SIGPIPE, signal.SIG_DFL)
    sys.exit(main())
