// bench_diff: regression gate over two bench-report JSON files.
//
//   bench_diff BASELINE.json CURRENT.json [--threshold F] [--set KEY=F]...
//              [--verbose]
//
// Walks both documents in lockstep (prof::diff_bench): numeric leaves are
// graded by the direction inferred from their key (speedups must not
// drop, cycle counts / milliseconds must not rise) against a relative
// threshold (default 0.05; --set overrides one leaf key, e.g.
// --set speedup_sim=0.10). Structural differences (missing keys, array
// size changes) always fail. Exit codes: 0 = no regression, 1 =
// regression or structural mismatch, 2 = usage or parse error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "prof/bench_compare.hpp"
#include "util/json_in.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bench_diff BASELINE.json CURRENT.json"
               " [--threshold F] [--set KEY=F]... [--verbose]\n");
  return 2;
}

const char* direction_name(ls::prof::MetricDirection d) {
  switch (d) {
    case ls::prof::MetricDirection::kLowerBetter: return "lower-better";
    case ls::prof::MetricDirection::kHigherBetter: return "higher-better";
    case ls::prof::MetricDirection::kInfo: return "info";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  std::string base_path;
  std::string cur_path;
  ls::prof::DiffOptions opts;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold") {
      if (++i >= argc) return usage();
      opts.default_threshold = std::atof(argv[i]);
    } else if (arg == "--set") {
      if (++i >= argc) return usage();
      const char* eq = std::strchr(argv[i], '=');
      if (eq == nullptr) return usage();
      opts.thresholds[std::string(argv[i], static_cast<std::size_t>(
                                               eq - argv[i]))] =
          std::atof(eq + 1);
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (base_path.empty()) {
      base_path = arg;
    } else if (cur_path.empty()) {
      cur_path = arg;
    } else {
      return usage();
    }
  }
  if (base_path.empty() || cur_path.empty()) return usage();

  ls::util::JsonValue base;
  ls::util::JsonValue cur;
  std::string error;
  if (!ls::util::parse_json_file(base_path, &base, &error)) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", base_path.c_str(),
                 error.c_str());
    return 2;
  }
  if (!ls::util::parse_json_file(cur_path, &cur, &error)) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", cur_path.c_str(),
                 error.c_str());
    return 2;
  }

  const ls::prof::DiffResult result = ls::prof::diff_bench(base, cur, opts);

  std::size_t graded = 0;
  for (const ls::prof::MetricDiff& d : result.diffs) {
    graded += d.direction != ls::prof::MetricDirection::kInfo ? 1 : 0;
    if (d.regressed) {
      std::printf("REGRESSION %s (%s): %g -> %g (%+.2f%%)\n",
                  d.path.c_str(), direction_name(d.direction), d.base,
                  d.current, d.rel_change * 100.0);
    } else if (verbose && d.direction != ls::prof::MetricDirection::kInfo &&
               d.base != d.current) {
      std::printf("ok         %s (%s): %g -> %g (%+.2f%%)\n",
                  d.path.c_str(), direction_name(d.direction), d.base,
                  d.current, d.rel_change * 100.0);
    }
  }
  for (const std::string& m : result.mismatches) {
    std::printf("MISMATCH   %s\n", m.c_str());
  }
  std::printf("bench_diff: %zu metrics graded (%zu compared), "
              "%zu regressions, %zu mismatches\n",
              graded, result.diffs.size(), result.regressions,
              result.mismatches.size());
  return result.ok() ? 0 : 1;
}
